package gen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"codsim/internal/scenario"
)

// SpecHash is the content hash the verdict cache keys on: FNV-1a 64 over
// the spec's canonical JSON (scenario.MarshalSpec). A cached verdict is
// only ever replayed when the candidate's regenerated spec bytes hash to
// the stored value, so generator changes invalidate stale entries
// automatically instead of replaying verdicts for specs that no longer
// exist.
func SpecHash(spec scenario.Spec) (uint64, error) {
	raw, err := scenario.MarshalSpec(spec)
	if err != nil {
		return 0, err
	}
	h := uint64(14695981039346656037)
	for _, b := range raw {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h, nil
}

// cacheLine is one JSONL record of the persistent verdict cache.
type cacheLine struct {
	// Sig is the campaign's generation signature (gen.Sig: seed + params
	// hash, count-independent).
	Sig string `json:"sig"`
	// Cand is the candidate index within the signature's sub-seed stream.
	Cand int64 `json:"cand"`
	// Spec is the candidate's SpecHash, hex-encoded.
	Spec string `json:"spec"`
	// OK is the dry-run verdict: certified completable or vetoed.
	OK bool `json:"ok"`
}

// Cache is the persistent oracle-verdict store: an append-only JSONL file
// keyed by (generation signature, candidate index, spec-content hash).
// A Stream consults it before every dry-run and — unless ReadOnly —
// appends every fresh verdict, so re-running a campaign replays verdicts
// instead of re-flying dry-runs. Lines whose signature doesn't match, or
// that don't parse (a crash mid-append truncates at most the final line),
// are skipped on load; the file heals on the next append.
//
// Lookup and append are goroutine-safe: a Stream's prefetch task reads
// while the merge path appends.
type Cache struct {
	// ReadOnly consults existing verdicts without recording new ones. Use
	// it when the attached oracle is weaker than the dry-run (lazy or
	// static-only campaigns): their verdicts must never poison the cache
	// that strict campaigns trust.
	ReadOnly bool

	sig  string
	path string

	mu   sync.Mutex
	m    map[cacheKey]bool
	file *os.File
	w    *bufio.Writer
}

type cacheKey struct {
	cand int64
	spec uint64
}

// OpenCache loads (creating if absent) the verdict cache at path for the
// campaign signature Sig(seed, params). Entries recorded under other
// signatures stay in the file untouched — one cache file can serve many
// campaigns — they are simply not loaded.
func OpenCache(path string, seed int64, params Params) (*Cache, error) {
	sig := Sig(seed, params)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("gen: campaign cache %s: %w", path, err)
	}
	c := &Cache{sig: sig, path: path, file: f, m: make(map[cacheKey]bool)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var line cacheLine
		if json.Unmarshal(sc.Bytes(), &line) != nil {
			continue // corrupt line (torn write, hand edit): skip, don't fail
		}
		if line.Sig != sig {
			continue
		}
		var spec uint64
		if _, err := fmt.Sscanf(line.Spec, "%016x", &spec); err != nil {
			continue
		}
		c.m[cacheKey{cand: line.Cand, spec: spec}] = line.OK
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("gen: campaign cache %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil { // io.SeekEnd: append from here
		f.Close()
		return nil, fmt.Errorf("gen: campaign cache %s: %w", path, err)
	}
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Len reports how many verdicts are loaded for this cache's signature.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// lookup returns the cached verdict for a candidate, if present.
func (c *Cache) lookup(cand int64, spec uint64) (ok, found bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ok, found = c.m[cacheKey{cand: cand, spec: spec}]
	return ok, found
}

// add records a fresh dry-run verdict (no-op when ReadOnly). The line is
// buffered; Close flushes.
func (c *Cache) add(cand int64, spec uint64, ok bool) error {
	if c.ReadOnly {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{cand: cand, spec: spec}
	if _, dup := c.m[key]; dup {
		return nil
	}
	c.m[key] = ok
	raw, err := json.Marshal(cacheLine{Sig: c.sig, Cand: cand, Spec: fmt.Sprintf("%016x", spec), OK: ok})
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if _, err := c.w.Write(raw); err != nil {
		return fmt.Errorf("gen: campaign cache %s: %w", c.path, err)
	}
	return nil
}

// Close flushes buffered verdicts and releases the file.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.w != nil {
		err = c.w.Flush()
	}
	if cerr := c.file.Close(); err == nil {
		err = cerr
	}
	c.w, c.file = nil, nil
	return err
}
