package gen

import (
	"context"
	"errors"
	"testing"

	"codsim/internal/trace"
)

// The early-exit stall window must be verdict-neutral on generated work
// too: across a 200-candidate corpus, the oracle with the stall budget
// and a full-budget run agree on every candidate. Together with trace's
// library equivalence test this is the proof that early exit only
// changes how fast a hopeless dry-run dies, never which candidates a
// campaign dispatches.
func TestEarlyExitVerdictEquivalenceCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("200 expert dry-runs in -short")
	}
	p := DefaultParams()
	ctx := context.Background()
	checked, rejected := 0, 0
	for k := int64(0); k < 200; k++ {
		spec, err := Generate(SubSeed(1234, k), p)
		if err != nil {
			t.Fatalf("candidate %d: %v", k, err)
		}
		if StaticCheck(spec) != nil {
			continue // static rejects never reach either dry-run path
		}
		budget := 3 * spec.Course.ParTime // Verify's default budget rule
		if budget < 900 {
			budget = 900
		}
		_, early, err := trace.Completable(ctx, spec, budget)
		if err != nil {
			t.Fatalf("candidate %d early-exit run: %v", k, err)
		}
		res, err := (&trace.Runner{}).RunSkill(ctx, spec, budget, trace.SkillProfile{})
		full := err == nil && res.Passed
		if err != nil && !errors.Is(err, trace.ErrIncomplete) {
			t.Fatalf("candidate %d full-budget run: %v", k, err)
		}
		if early != full {
			t.Fatalf("candidate %d (%s): early-exit verdict %v, full-budget verdict %v", k, spec.Name, early, full)
		}
		checked++
		if !full {
			rejected++
		}
	}
	t.Logf("%d candidates verdict-checked, %d rejected by both paths", checked, rejected)
	if checked < 150 {
		t.Fatalf("only %d/200 candidates survived the static check — corpus too thin to back the equivalence claim", checked)
	}
	if rejected == checked {
		t.Fatal("every candidate rejected — the equivalence check never exercised a certified run")
	}
}
