package gen

import (
	"bytes"
	"context"
	"testing"

	"codsim/internal/mathx"
	"codsim/internal/scenario"
)

// Same seed and params must yield the byte-identical spec — campaigns are
// reproducible only if generation is a pure function.
func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	for seed := int64(0); seed < 50; seed++ {
		a, err := Generate(seed, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, p)
		if err != nil {
			t.Fatalf("seed %d again: %v", seed, err)
		}
		ja, err := scenario.MarshalSpec(a)
		if err != nil {
			t.Fatalf("seed %d marshal: %v", seed, err)
		}
		jb, _ := scenario.MarshalSpec(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// Every archetype must appear under the default params, and every
// candidate must already pass the free reachability check — the dry-run
// oracle exists to catch dynamics, not geometry the sampler got wrong.
func TestGenerateArchetypesAndStatic(t *testing.T) {
	p := DefaultParams()
	seen := map[string]int{}
	staticFails := 0
	const n = 300
	for k := int64(0); k < n; k++ {
		spec, err := Generate(SubSeed(11, k), p)
		if err != nil {
			t.Fatalf("candidate %d: %v", k, err)
		}
		seen[spec.Name]++
		if err := StaticCheck(spec); err != nil {
			staticFails++
			t.Logf("candidate %d static: %v", k, err)
		}
	}
	for _, name := range []string{"gen-linear", "gen-shuttle", "gen-twin", "gen-tandem"} {
		if seen[name] == 0 {
			t.Errorf("archetype %s never sampled in %d candidates (%v)", name, n, seen)
		}
	}
	if staticFails > 0 {
		t.Errorf("%d/%d candidates fail their own static check", staticFails, n)
	}
}

func TestStaticCheckRejectsUnreachable(t *testing.T) {
	spec, err := Generate(SubSeed(3, 0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Drag one work target out past the reach band.
	for i := range spec.Phases {
		if spec.Phases[i].Kind == scenario.PhasePlace {
			spec.Phases[i].Target = spec.Phases[i].Target.Add(mathx.V3(30, 0, 0))
			break
		}
	}
	if err := StaticCheck(spec); err == nil {
		t.Fatal("static check accepted a 30 m overshoot")
	}
}

// Two fresh streams over the same seed must emit the identical sequence
// and tallies even when the oracle vetoes candidates — resampling rides
// the same sub-seed stream.
func TestStreamDeterministicUnderRejection(t *testing.T) {
	// Deterministic stub: veto every third candidate regardless of spec.
	veto := func(_ context.Context, spec scenario.Spec) (bool, error) {
		var sum int
		for _, c := range spec.Title {
			sum += int(c)
		}
		return sum%3 != 0, nil
	}
	run := func() ([]string, Stats) {
		s := NewStream(99, DefaultParams())
		s.Oracle = veto
		s.Parallel = 4
		var out []string
		for i := 0; i < 20; i++ {
			spec, cand, err := s.Next(context.Background())
			if err != nil {
				t.Fatalf("emit %d: %v", i, err)
			}
			j, _ := scenario.MarshalSpec(spec)
			out = append(out, string(j)+"#"+string(rune('0'+cand%10)))
		}
		return out, s.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("tallies differ: %+v vs %+v", sa, sb)
	}
	if sa.OracleRejects == 0 {
		t.Fatal("stub oracle never vetoed — test is vacuous")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("emission %d differs between streams", i)
		}
	}
}

// The real oracle must certify generated candidates at a usable rate:
// flying a handful of emissions proves the generator's envelopes are
// inside what the expert autopilot can actually do.
func TestStreamCertifiesWithExpertOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("expert dry-runs in -short")
	}
	s := NewStream(7, DefaultParams())
	for i := 0; i < 6; i++ {
		if _, _, err := s.Next(context.Background()); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	st := s.Stats()
	t.Logf("stats: %+v", st)
	if st.Emitted != 6 {
		t.Fatalf("emitted %d", st.Emitted)
	}
	if st.Candidates > 4*st.Emitted {
		t.Errorf("oracle rejects %d of %d candidates — envelopes too loose", st.Candidates-st.Emitted, st.Candidates)
	}
}

func TestKeyStable(t *testing.T) {
	p := DefaultParams()
	if Key(5, 100, p) != Key(5, 100, p) {
		t.Fatal("key not stable")
	}
	q := p
	q.WindProb = 0.9
	if Key(5, 100, p) == Key(5, 100, q) {
		t.Fatal("key ignores params")
	}
	if Key(5, 100, p) == Key(6, 100, p) {
		t.Fatal("key ignores seed")
	}
}
