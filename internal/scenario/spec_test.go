package scenario

import (
	"strings"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func TestSpecValidate(t *testing.T) {
	base := SpecFromCourse("t", "T", DefaultCourse())
	if err := base.Validate(); err != nil {
		t.Fatalf("classic spec invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"bad cargo index", func(s *Spec) { s.Phases[1].Cargo = 5 }, "cargo index"},
		{"traverse without waypoints", func(s *Spec) { s.Phases[2].Waypoints = nil }, "without waypoints"},
		{"zero drive radius", func(s *Spec) { s.Phases[0].Radius = 0 }, "radius"},
		{"unknown kind", func(s *Spec) { s.Phases[0].Kind = 99 }, "unknown kind"},
		{"next out of graph", func(s *Spec) { s.Phases[0].Next = 17 }, "out of graph"},
		{"bad visibility", func(s *Spec) { s.Visibility = 1.5 }, "visibility"},
		// A traverse or place with no lift before it would make the drop
		// edge deduct every tick forever — Validate must reject it.
		{"traverse before any lift", func(s *Spec) {
			s.Phases = []PhaseSpec{s.Phases[0], s.Phases[2]}
		}, "no preceding lift"},
		{"place before any lift", func(s *Spec) {
			s.Phases = []PhaseSpec{s.Phases[0], s.Phases[3]}
		}, "no preceding lift"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := SpecFromCourse("t", "T", DefaultCourse())
			tc.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestSpecGraphResolution(t *testing.T) {
	s := SpecFromCourse("t", "T", DefaultCourse())
	if got := s.next(0); got != 1 {
		t.Errorf("next(0) = %d", got)
	}
	if got := s.next(len(s.Phases) - 1); got != Terminal {
		t.Errorf("next(last) = %d, want Terminal", got)
	}
	s.Phases[1].Next = 3
	if got := s.next(1); got != 3 {
		t.Errorf("explicit next = %d", got)
	}
	s.Phases[2].Next = Terminal
	if got := s.next(2); got != Terminal {
		t.Errorf("explicit terminal = %d", got)
	}

	if j, ok := s.fallbackLift(3); !ok || j != 1 {
		t.Errorf("fallbackLift(3) = %d,%v", j, ok)
	}
	if _, ok := s.fallbackLift(0); ok {
		t.Error("fallback before any lift should report !ok")
	}
}

func TestPhaseKindFOMMapping(t *testing.T) {
	want := map[PhaseKind]fom.Phase{
		PhaseDrive:    fom.PhaseDriving,
		PhaseLift:     fom.PhaseLifting,
		PhaseTraverse: fom.PhaseTraverse,
		PhasePlace:    fom.PhaseReturn,
	}
	for k, p := range want {
		if got := k.FOMPhase(); got != p {
			t.Errorf("%v -> %v, want %v", k, got, p)
		}
	}
	if PhaseKind(99).FOMPhase() != fom.PhaseIdle {
		t.Error("unknown kind should map to idle")
	}
}

// TestEngineInterpretsGraph drives a two-lift graph through the engine with
// synthetic crane states: lift A, place A on the pad, re-lift, place home.
func TestEngineInterpretsGraph(t *testing.T) {
	c := DefaultCourse()
	c.Bars = nil
	pad := c.Circle.Add(mathx.V3(9, 0, 1))
	spec := Spec{
		Name:   "graph",
		Title:  "Graph walk",
		Course: c,
		Cargos: []Cargo{{Name: "crate", Pos: c.Circle, Mass: 1000}},
		Phases: []PhaseSpec{
			{Name: "park", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "pick", Kind: PhaseLift, Cargo: 0},
			{Name: "out", Kind: PhasePlace, Target: pad, Radius: 2},
			{Name: "re-pick", Kind: PhaseLift, Cargo: 0},
			{Name: "home", Kind: PhasePlace, Target: c.Circle, Radius: 2},
		},
	}
	e, err := NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	at := func(cargo mathx.Vec3, held bool) fom.CraneState {
		st := stateAt(c.DriveTarget)
		st.CargoPos = cargo
		st.CargoHeld = held
		return st
	}

	e.Step(at(c.Circle, false), 0.1) // parked → pick
	if got := e.State(); got.Phase != fom.PhaseLifting || got.PhaseIndex != 1 {
		t.Fatalf("after park: %v idx=%d", got.Phase, got.PhaseIndex)
	}
	e.Step(at(c.Circle, true), 0.1) // latched → out
	if got := e.State(); got.Phase != fom.PhaseReturn || got.PhaseIndex != 2 {
		t.Fatalf("after pick: %v idx=%d", got.Phase, got.PhaseIndex)
	}
	e.Step(at(pad, false), 0.1) // released on pad → re-pick
	if got := e.State(); got.Phase != fom.PhaseLifting || got.PhaseIndex != 3 {
		t.Fatalf("after out: %v idx=%d", got.Phase, got.PhaseIndex)
	}
	e.Step(at(pad, true), 0.1) // latched again → home
	if got := e.State(); got.Phase != fom.PhaseReturn || got.PhaseIndex != 4 {
		t.Fatalf("after re-pick: %v idx=%d", got.Phase, got.PhaseIndex)
	}
	e.Step(at(c.Circle, false), 0.1) // released home → terminal
	if got := e.State(); got.Phase != fom.PhaseComplete {
		t.Fatalf("terminal: %v (%q)", got.Phase, got.Message)
	}
}

// TestEngineLiftChecksCargoIdentity pins the multi-cargo lift gate: a
// lift phase only completes when the latched load is the one it names
// (telemetry that cannot identify the load, CargoID < 0, is accepted).
func TestEngineLiftChecksCargoIdentity(t *testing.T) {
	c := DefaultCourse()
	c.Bars = nil
	decoyPos := c.Circle.Add(mathx.V3(-4, 0, -4))
	spec := Spec{
		Name:   "identity",
		Title:  "Identity",
		Course: c,
		Cargos: []Cargo{
			{Name: "the decoy", Pos: decoyPos, Mass: 500},
			{Name: "the target", Pos: c.Circle, Mass: 1500},
		},
		Phases: []PhaseSpec{
			{Name: "park", Kind: PhaseDrive, Target: c.DriveTarget, Radius: c.DriveRadius},
			{Name: "pick", Kind: PhaseLift, Cargo: 1},
			{Name: "home", Kind: PhasePlace, Target: c.Circle, Radius: 3},
		},
	}
	e, err := NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	st := stateAt(c.DriveTarget)
	e.Step(st, 0.1) // parked → pick

	st.CargoHeld = true
	st.CargoID = 0 // latched the decoy
	e.Step(st, 0.1)
	if got := e.State(); got.Phase != fom.PhaseLifting {
		t.Fatalf("decoy latch advanced the graph: %v", got.Phase)
	}
	if msg := e.State().Message; !strings.Contains(msg, "the decoy") {
		t.Errorf("wrong-cargo message = %q", msg)
	}

	st.CargoID = 1 // the right load
	e.Step(st, 0.1)
	if got := e.State(); got.Phase != fom.PhaseReturn {
		t.Fatalf("target latch did not advance: %v", got.Phase)
	}

	// Legacy telemetry (no cargo identity) is accepted.
	e2, _ := NewEngineSpec(spec, crane.DefaultSpec())
	e2.Start()
	st2 := stateAt(c.DriveTarget)
	e2.Step(st2, 0.1)
	st2.CargoHeld = true
	st2.CargoID = -1
	e2.Step(st2, 0.1)
	if got := e2.State(); got.Phase != fom.PhaseReturn {
		t.Fatalf("legacy latch did not advance: %v", got.Phase)
	}
}

// TestEnginePlaceDropFallback pins the drop edge: releasing the cargo far
// from the place target deducts and falls back to the preceding lift.
func TestEnginePlaceDropFallback(t *testing.T) {
	c := DefaultCourse()
	c.Bars = nil
	spec := SpecFromCourse("drop", "Drop", c)
	e, err := NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	st := stateAt(c.DriveTarget)
	e.Step(st, 0.1) // → lift
	st.CargoHeld = true
	e.Step(st, 0.1) // → traverse
	// Fly all gates.
	for _, wp := range spec.Phases[2].Waypoints {
		st.CargoPos = wp.Add(mathx.V3(0, 6, 0))
		st.HookPos = st.CargoPos
		e.Step(st, 1)
	}
	if e.State().Phase != fom.PhaseReturn {
		t.Fatalf("not in place: %v", e.State().Phase)
	}
	before := e.Score()
	// Drop far outside the circle.
	st.CargoPos = c.Circle.Add(mathx.V3(20, 0, 0))
	st.CargoHeld = false
	e.Step(st, 0.1)
	if got := e.State(); got.Phase != fom.PhaseLifting {
		t.Fatalf("after far drop: %v", got.Phase)
	}
	if e.Score() >= before {
		t.Error("far drop cost nothing")
	}
}
