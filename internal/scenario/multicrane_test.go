package scenario

import (
	"strings"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// tandemSpec builds a minimal valid two-crane tandem spec for tests.
func tandemSpec() Spec {
	c := DefaultCourse()
	c.Bars = nil
	beam := c.Circle
	return Spec{
		Name:   "test-tandem",
		Title:  "Test tandem",
		Course: c,
		Cranes: []CraneDecl{
			{Name: "a", Start: c.Start, StartYaw: c.StartYaw},
			{Name: "b", Start: c.Start.Add(mathx.V3(10, 0, 0))},
		},
		Cargos: []Cargo{{Name: "beam", Pos: beam, Mass: 3000, Hooks: 2}},
		Phases: []PhaseSpec{
			{Name: "a-spot", Kind: PhaseDrive, Crane: 0, Target: beam.Add(mathx.V3(0, 0, 9)), Radius: 4},
			{Name: "b-spot", Kind: PhaseDrive, Crane: 1, Target: beam.Add(mathx.V3(0, 0, -9)), Radius: 4},
			{Name: "a-hook", Kind: PhaseLift, Crane: 0, Cargo: 0, Tandem: true},
			{Name: "b-hook", Kind: PhaseLift, Crane: 1, Cargo: 0, Tandem: true},
			{Name: "a-set", Kind: PhasePlace, Crane: 0, Target: beam.Add(mathx.V3(6, 0, 0)), Radius: 3},
			{Name: "b-set", Kind: PhasePlace, Crane: 1, Target: beam.Add(mathx.V3(6, 0, 0)), Radius: 3},
		},
	}
}

func TestMultiCraneValidate(t *testing.T) {
	if err := tandemSpec().Validate(); err != nil {
		t.Fatalf("valid tandem spec rejected: %v", err)
	}

	breakSpec := func(mutate func(*Spec)) error {
		s := tandemSpec()
		mutate(&s)
		return s.Validate()
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"crane index out of range", func(s *Spec) { s.Phases[0].Crane = 2 }, "crane index"},
		{"negative crane index", func(s *Spec) { s.Phases[0].Crane = -1 }, "crane index"},
		{"tandem with one crane", func(s *Spec) {
			// Only crane 0 ever lifts the beam: the other tandem node is
			// retargeted to a single-hook crate, so the beam waits for a
			// partner that never comes.
			s.Cargos = append(s.Cargos, Cargo{Name: "crate", Pos: s.Cargos[0].Pos, Mass: 500})
			s.Phases[3].Cargo = 1
			s.Phases[3].Tandem = false
		}, "tandem cranes"},
		{"hooks exceed declared cranes", func(s *Spec) { s.Cargos[0].Hooks = 3 }, "crane(s) declared"},
		{"tandem node on single-hook cargo", func(s *Spec) { s.Cargos[0].Hooks = 1 }, "single-hook"},
		{"multi-hook cargo without tandem node", func(s *Spec) { s.Phases[2].Tandem = false }, "tandem node"},
		{"tandem on a drive node", func(s *Spec) { s.Phases[0].Tandem = true }, "tandem on a"},
		{"next crosses cranes", func(s *Spec) { s.Phases[2].Next = 3 }, "belongs to crane"},
		{"declared crane without phases", func(s *Spec) {
			s.Cranes = append(s.Cranes, CraneDecl{Name: "idle"})
			s.Cargos[0].Hooks = 2 // still satisfiable
		}, "declares no phases"},
		{"legacy spec with out-of-range crane", func(s *Spec) {
			s.Cranes = nil
			for i := range s.Phases {
				s.Phases[i].Crane = 0
				s.Phases[i].Tandem = false
			}
			s.Cargos[0].Hooks = 0
			s.Phases[1].Crane = 1
		}, "crane index"},
	}
	for _, tc := range cases {
		err := breakSpec(tc.mutate)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCraneDeclsLegacyDefault(t *testing.T) {
	s := Classic()
	if n := s.CraneCount(); n != 1 {
		t.Fatalf("legacy CraneCount = %d", n)
	}
	decls := s.CraneDecls()
	if len(decls) != 1 || decls[0].Start != s.Course.Start || decls[0].StartYaw != s.Course.StartYaw {
		t.Fatalf("legacy decls = %+v", decls)
	}
	if n := tandemSpec().CraneCount(); n != 2 {
		t.Fatalf("tandem CraneCount = %d", n)
	}
}

func TestPerCraneGraphResolution(t *testing.T) {
	s := tandemSpec()
	// next skips the other crane's interleaved nodes.
	if got := s.next(0); got != 2 {
		t.Errorf("next(0) = %d, want 2 (crane 0's lift)", got)
	}
	if got := s.next(1); got != 3 {
		t.Errorf("next(1) = %d, want 3 (crane 1's lift)", got)
	}
	if got := s.next(4); got != Terminal {
		t.Errorf("next(4) = %d, want Terminal", got)
	}
	// Entry nodes per crane.
	if e, ok := s.EntryFor(1); !ok || e != 1 {
		t.Errorf("EntryFor(1) = %d,%v", e, ok)
	}
	// Drop fallback stays within the crane.
	if j, ok := s.fallbackLift(5); !ok || j != 3 {
		t.Errorf("fallbackLift(5) = %d,%v, want crane 1's lift (3)", j, ok)
	}
}

// TestEngineTandemGate drives the engine with synthetic telemetry: the
// first hook alone must not advance past the tandem lift; both hooks
// latched advance both cursors; the combined verdict waits for both
// cranes to finish.
func TestEngineTandemGate(t *testing.T) {
	s := tandemSpec()
	e, err := NewEngineSpec(s, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	mk := func(c int) fom.CraneState {
		target := s.Phases[c].Target // crane c's drive spot
		return fom.CraneState{
			Position: target,
			HookPos:  mathx.V3(0, 50, 0), // far from the bars and the beam
			CargoPos: s.Cargos[0].Pos,
			CargoID:  -1,
			CraneID:  int64(c),
		}
	}
	states := []fom.CraneState{mk(0), mk(1)}
	e.StepAll(states, 0.1) // both drives complete
	if p0 := e.StateFor(0).PhaseIndex; p0 != 2 {
		t.Fatalf("crane 0 at node %d, want its lift (2): %q", p0, e.StateFor(0).Message)
	}
	if p1 := e.StateFor(1).PhaseIndex; p1 != 3 {
		t.Fatalf("crane 1 at node %d, want its lift (3)", p1)
	}

	// One hook latched: the tandem gate must hold both cursors.
	states[0].CargoHeld = true
	states[0].CargoID = 0
	e.StepAll(states, 0.1)
	if p0 := e.StateFor(0).PhaseIndex; p0 != 2 {
		t.Fatalf("single hook advanced the tandem lift to node %d", p0)
	}
	if msg := e.StateFor(0).Message; !strings.Contains(msg, "waiting for partner") {
		t.Errorf("crane 0 message %q lacks the partner wait", msg)
	}

	// Second hook on: both cursors advance to their place nodes.
	states[1].CargoHeld = true
	states[1].CargoID = 0
	e.StepAll(states, 0.1)
	if p0, p1 := e.StateFor(0).PhaseIndex, e.StateFor(1).PhaseIndex; p0 != 4 || p1 != 5 {
		t.Fatalf("after both hooks: cursors at %d/%d, want 4/5", p0, p1)
	}

	// Crane 0 sets down inside the pad; the run must wait for crane 1.
	pad := s.Phases[4].Target
	states[0].CargoHeld = false
	states[0].CargoID = -1
	states[0].CargoPos = pad
	states[1].CargoPos = pad
	e.StepAll(states, 0.1)
	if ph := e.Phase(); ph == fom.PhaseComplete || ph == fom.PhaseFailed {
		t.Fatalf("run ended with crane 1 still placing (phase %v)", ph)
	}
	if st0 := e.StateFor(0); st0.Phase != fom.PhaseComplete {
		t.Errorf("finished crane 0 reports %v", st0.Phase)
	}

	// Crane 1 releases too: collective verdict.
	states[1].CargoHeld = false
	states[1].CargoID = -1
	e.StepAll(states, 0.1)
	if ph := e.Phase(); ph != fom.PhaseComplete {
		t.Fatalf("run phase %v, want complete (%q)", ph, e.State().Message)
	}
}

// TestCollisionDebouncePerCrane pins the episode accounting across
// cranes: one crane resting against a bar for many ticks is a single
// contact episode, and a contact-free partner crane's judging pass must
// not end (and instantly re-count) it.
func TestCollisionDebouncePerCrane(t *testing.T) {
	s := tandemSpec()
	s.Course.Bars = []Bar{{
		Name: "bar-A",
		Pos:  s.Course.Circle.Add(mathx.V3(0, 1.2, 4)),
		Half: mathx.V3(0.15, 1.2, 1.5),
	}}
	e, err := NewEngineSpec(s, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	far := mathx.V3(0, 50, 0)
	inBar := s.Course.Bars[0].Pos
	states := []fom.CraneState{
		{Position: s.Phases[0].Target, HookPos: inBar, CargoPos: far, CargoID: -1, Stability: 1},
		{Position: far, HookPos: far, CargoPos: far, CargoID: -1, CraneID: 1, Stability: 1},
	}
	for i := 0; i < 30; i++ { // one second of sustained contact at 30 Hz
		e.StepAll(states, 1.0/30)
	}
	if got := e.State().Collisions; got != 1 {
		t.Fatalf("sustained one-crane contact counted %d episodes, want 1", got)
	}

	// Contact ends and resumes: that is a second episode.
	states[0].HookPos = far
	e.StepAll(states, 1.0/30)
	states[0].HookPos = inBar
	e.StepAll(states, 1.0/30)
	if got := e.State().Collisions; got != 2 {
		t.Fatalf("re-contact counted %d episodes, want 2", got)
	}
}

// TestEngineStateForSharesVerdict pins the per-crane state contract: one
// state per crane with its own CraneID, shared score/elapsed, and the
// collective terminal verdict mirrored everywhere.
func TestEngineStateForSharesVerdict(t *testing.T) {
	e, err := NewEngineSpec(tandemSpec(), crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	states := e.States()
	if len(states) != 2 {
		t.Fatalf("States() = %d entries", len(states))
	}
	for c, st := range states {
		if st.CraneID != int64(c) {
			t.Errorf("state %d CraneID = %d", c, st.CraneID)
		}
		if st.Phase != fom.PhaseIdle {
			t.Errorf("state %d idle phase = %v", c, st.Phase)
		}
	}
}

// TestTandemDropChoreographyReset pins the ROADMAP drop-recovery rule:
// when one crane drops its end of a tandem load mid-carry, BOTH cursors
// fall back to their tandem lift gates together — the partner must not
// keep a waypoint far down the sequence the dropper can no longer reach.
func TestTandemDropChoreographyReset(t *testing.T) {
	s := tandemSpec()
	e, err := NewEngineSpec(s, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	mk := func(c int) fom.CraneState {
		return fom.CraneState{
			Position: s.Phases[c].Target,
			HookPos:  mathx.V3(0, 50, 0),
			CargoPos: s.Cargos[0].Pos,
			CargoID:  -1,
			CraneID:  int64(c),
		}
	}
	states := []fom.CraneState{mk(0), mk(1)}
	e.StepAll(states, 0.1) // both drives complete → both at tandem lifts
	for c := range states {
		states[c].CargoHeld = true
		states[c].CargoID = 0
	}
	e.StepAll(states, 0.1) // gate opens → both at their place nodes
	if p0, p1 := e.StateFor(0).PhaseIndex, e.StateFor(1).PhaseIndex; p0 != 4 || p1 != 5 {
		t.Fatalf("carry cursors at %d/%d, want 4/5", p0, p1)
	}

	// Crane 0 fumbles the load far outside the pad; crane 1 still holds
	// its end.
	before := e.Score()
	states[0].CargoHeld = false
	states[0].CargoID = -1
	events := e.StepAll(states, 0.1)
	changed := map[int]bool{}
	for _, ev := range events {
		if ev.Kind == EventPhaseChange {
			changed[ev.Crane] = true
		}
	}
	if !changed[0] || !changed[1] {
		t.Errorf("phase-change events cover cranes %v, want both (partner reset must be recorded)", changed)
	}
	if p0 := e.StateFor(0).PhaseIndex; p0 != 2 {
		t.Fatalf("dropper at node %d, want its tandem lift (2)", p0)
	}
	if p1 := e.StateFor(1).PhaseIndex; p1 != 3 {
		t.Fatalf("partner at node %d, want choreography reset to its tandem lift (3): %q",
			p1, e.StateFor(1).Message)
	}
	if e.Score() >= before {
		t.Errorf("drop cost no score (%.1f → %.1f)", before, e.Score())
	}
	// Same-tick stepping already re-judges the reset cursor: the partner
	// still holds its hook, so it reports the reopened tandem gate.
	if msg := e.StateFor(1).Message; !strings.Contains(msg, "waiting for partner hooks") {
		t.Errorf("partner message %q does not show the reopened gate", msg)
	}

	// Recovery: the dropper re-latches, the gate opens again, and the
	// choreography resumes from the lift.
	states[0].CargoHeld = true
	states[0].CargoID = 0
	e.StepAll(states, 0.1)
	if p0, p1 := e.StateFor(0).PhaseIndex, e.StateFor(1).PhaseIndex; p0 != 4 || p1 != 5 {
		t.Fatalf("after re-latch cursors at %d/%d, want 4/5", p0, p1)
	}
}

// TestTandemDropLeavesRetiredPartnerAlone: a partner that already set the
// shared load down and retired its sub-graph is not dragged back when the
// other crane later drops a different (single-hook) load.
func TestTandemDropLeavesRetiredPartnerAlone(t *testing.T) {
	s := tandemSpec()
	// Crane 0 carries on after the tandem set-down with a solo crate.
	s.Cargos = append(s.Cargos, Cargo{Name: "crate", Pos: s.Course.Circle.Add(mathx.V3(-8, 0, 0)), Mass: 500})
	s.Phases = append(s.Phases,
		PhaseSpec{Name: "a-crate", Kind: PhaseLift, Crane: 0, Cargo: 1},
		PhaseSpec{Name: "a-crate-set", Kind: PhasePlace, Crane: 0, Target: s.Course.Circle.Add(mathx.V3(-14, 0, 0)), Radius: 3},
	)
	e, err := NewEngineSpec(s, crane.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	mk := func(c int) fom.CraneState {
		return fom.CraneState{
			Position: s.Phases[c].Target,
			HookPos:  mathx.V3(0, 50, 0),
			CargoPos: s.Cargos[0].Pos,
			CargoID:  -1,
			CraneID:  int64(c),
		}
	}
	states := []fom.CraneState{mk(0), mk(1)}
	e.StepAll(states, 0.1)
	for c := range states {
		states[c].CargoHeld = true
		states[c].CargoID = 0
	}
	e.StepAll(states, 0.1) // both carrying to their pads
	pad := s.Phases[4].Target
	for c := range states {
		states[c].CargoHeld = false
		states[c].CargoID = -1
		states[c].CargoPos = pad
	}
	e.StepAll(states, 0.1) // tandem load set down; crane 1 retires
	if st1 := e.StateFor(1); st1.Phase != fom.PhaseComplete {
		t.Fatalf("crane 1 not retired: %v %q", st1.Phase, st1.Message)
	}

	// Crane 0 lifts the solo crate, then fumbles it: only crane 0 falls
	// back, to the crate lift — not to the tandem gate — and crane 1
	// stays retired.
	states[0].CargoHeld = true
	states[0].CargoID = 1
	e.StepAll(states, 0.1)
	states[0].CargoHeld = false
	states[0].CargoID = -1
	states[0].CargoPos = s.Cargos[1].Pos
	e.StepAll(states, 0.1)
	if p0 := e.StateFor(0).PhaseIndex; p0 != 6 {
		t.Fatalf("solo dropper at node %d, want the crate lift (6)", p0)
	}
	if st1 := e.StateFor(1); st1.Phase != fom.PhaseComplete {
		t.Errorf("retired partner disturbed by a solo drop: %v", st1.Phase)
	}
}
