package trace

import (
	"math"

	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/scenario"
)

// Autopilot is the synthetic trainee: a feedback controller that completes
// the licensing scenario from crane-state and scenario-state telemetry. It
// carries the cargo above the bar tops, which is a legal (if cautious)
// strategy — the exam deducts for collisions, not for altitude.
type Autopilot struct {
	course scenario.Course

	// Working geometry of the boom (matches dynamics.DefaultConfig).
	pivotUp  float64 // boom pivot height over the carrier origin
	pivotFwd float64 // boom pivot offset toward the rear (+Z body)
	workLuff float64 // luff angle held during cargo work

	latched    bool
	settleTime float64
	released   bool
}

// NewAutopilot builds an autopilot for the course.
func NewAutopilot(course scenario.Course) *Autopilot {
	return &Autopilot{
		course:   course,
		pivotUp:  2.4,
		pivotFwd: 1.0,
		workLuff: mathx.Rad(50),
	}
}

// Control produces the next operator input for the current telemetry.
func (a *Autopilot) Control(st fom.CraneState, scen fom.ScenarioState, dt float64) fom.ControlInput {
	in := fom.ControlInput{Ignition: true}
	switch scen.Phase {
	case fom.PhaseIdle:
		// Engine on and wait for the scenario to arm.
	case fom.PhaseDriving:
		a.drive(&in, st)
	case fom.PhaseLifting:
		a.parkBrake(&in)
		a.lift(&in, st, dt)
	case fom.PhaseTraverse:
		a.parkBrake(&in)
		a.traverse(&in, st, scen)
	case fom.PhaseReturn:
		a.parkBrake(&in)
		a.putDown(&in, st, dt)
	case fom.PhaseComplete, fom.PhaseFailed:
		in.Ignition = false
	}
	return in
}

func (a *Autopilot) parkBrake(in *fom.ControlInput) {
	in.Brake = 1
	in.Gear = 0
}

// drive steers the carrier toward the parking spot.
func (a *Autopilot) drive(in *fom.ControlInput, st fom.CraneState) {
	target := a.course.DriveTarget
	dx := target.X - st.Position.X
	dz := target.Z - st.Position.Z
	dist := math.Hypot(dx, dz)

	bearing := math.Atan2(dx, -dz) // compass heading toward the target
	headErr := mathx.AngleDiff(bearing, st.Heading)
	in.Steering = mathx.Clamp(2.2*headErr, -1, 1)

	// Speed proportional to remaining distance, capped under the site
	// limit, braking into the parking spot.
	targetSpeed := mathx.Clamp(dist*0.35, 0, 7.0)
	if dist < a.course.DriveRadius*1.5 {
		targetSpeed = 1.0
	}
	if st.Speed < targetSpeed {
		in.Gear = 1
		in.Throttle = mathx.Clamp(0.25*(targetSpeed-st.Speed)+0.25, 0, 1)
	} else {
		in.Brake = mathx.Clamp(0.4*(st.Speed-targetSpeed), 0, 1)
	}
}

// boomTo commands swing/telescope/hoist so the hook approaches the point
// `target` (world space) at height targetY.
func (a *Autopilot) boomTo(in *fom.ControlInput, st fom.CraneState, target mathx.Vec3, targetY float64) {
	// Pivot position in world space (carrier assumed near-level while
	// parked on the test ground).
	sinH, cosH := math.Sincos(st.Heading)
	fwd := mathx.V3(sinH, 0, -cosH)
	pivot := st.Position.Add(fwd.Scale(-a.pivotFwd)) // pivot sits behind center
	pivot.Y += a.pivotUp

	dx := target.X - pivot.X
	dz := target.Z - pivot.Z
	wantRadius := math.Hypot(dx, dz)
	bearing := math.Atan2(dx, -dz)
	wantSwing := mathx.AngleDiff(bearing, st.Heading)

	// Swing toward the bearing.
	swingErr := mathx.AngleDiff(wantSwing, st.BoomSwing)
	in.BoomJoyX = mathx.Clamp(3*swingErr, -1, 1)

	// Hold the working luff.
	luffErr := a.workLuff - st.BoomLuff
	in.BoomJoyY = mathx.Clamp(4*luffErr, -1, 1)

	// Telescope to the required radius.
	curRadius := st.BoomLen * math.Cos(st.BoomLuff)
	radiusErr := wantRadius - curRadius
	in.HoistJoyX = mathx.Clamp(1.5*radiusErr, -1, 1)

	// Hoist the cable so the hook sits at targetY. Positive joystick
	// pays cable out (hook descends).
	hookErr := st.HookPos.Y - targetY
	in.HoistJoyY = mathx.Clamp(0.8*hookErr, -1, 1)
}

// barTop returns a safe carry height above the tallest bar.
func (a *Autopilot) barTop() float64 {
	top := 0.0
	for _, b := range a.course.Bars {
		if h := b.Pos.Y + b.Half.Y; h > top {
			top = h
		}
	}
	return top + 1.6
}

// lift positions the hook over the cargo, descends and latches.
func (a *Autopilot) lift(in *fom.ControlInput, st fom.CraneState, dt float64) {
	cargoTop := st.CargoPos.Add(mathx.V3(0, 0.6, 0))
	horiz := math.Hypot(st.HookPos.X-cargoTop.X, st.HookPos.Z-cargoTop.Z)
	if horiz > 0.8 {
		// Align above the cargo first, hook held high.
		a.boomTo(in, st, cargoTop, cargoTop.Y+3)
		a.settleTime = 0
		return
	}
	// Descend onto the cargo and close the latch when near.
	a.boomTo(in, st, cargoTop, cargoTop.Y)
	if st.HookPos.Dist(cargoTop) < 1.2 {
		a.settleTime += dt
		if a.settleTime > 0.3 { // let the hook settle before latching
			in.HookLatch = true
			a.latched = true
		}
	}
}

// traverse carries the cargo through the course waypoints above bar height.
func (a *Autopilot) traverse(in *fom.ControlInput, st fom.CraneState, scen fom.ScenarioState) {
	in.HookLatch = true // keep holding
	wpIdx := int(scen.Waypoint)
	if wpIdx >= len(a.course.Waypoints) {
		wpIdx = len(a.course.Waypoints) - 1
	}
	wp := a.course.Waypoints[wpIdx]
	carryY := a.barTop() + 0.8 // cargo bottom clears the bars
	// The hook rides 0.6 m above the cargo center (latch offset) plus the
	// 0.6 m cargo half height.
	a.boomTo(in, st, wp, carryY+1.2)
}

// putDown returns the cargo to the circle, lowers it and releases.
func (a *Autopilot) putDown(in *fom.ControlInput, st fom.CraneState, dt float64) {
	if a.released {
		in.HookLatch = false
		return
	}
	in.HookLatch = true
	circle := a.course.Circle
	horiz := math.Hypot(st.CargoPos.X-circle.X, st.CargoPos.Z-circle.Z)
	if horiz > 1.2 {
		a.boomTo(in, st, circle, a.barTop()+2)
		return
	}
	// Over the circle: lower until the cargo grounds, then let go.
	a.boomTo(in, st, circle, st.Position.Y+1.2)
	if st.CargoPos.Y < st.Position.Y+1.4 {
		a.settleTime += dt
		if a.settleTime > 0.4 {
			in.HookLatch = false
			a.released = true
		}
	}
}
