package trace

import (
	"math"

	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/scenario"
)

// Autopilot is the synthetic trainee: a feedback controller that completes
// any scenario spec's phase graph from crane-state and scenario-state
// telemetry. It carries the cargo above the bar tops, which is a legal (if
// cautious) strategy — the exam deducts for collisions, not for altitude.
// In a multi-crane scenario one autopilot drives one assigned crane,
// walking only that crane's sub-graph; on tandem lift nodes it latches,
// then holds position until every partner hook arrives.
type Autopilot struct {
	spec  scenario.Spec
	crane int // assigned carrier (index into spec.Cranes)

	// skill degrades the controller output (reaction lag, overshoot,
	// widened slack); the zero value is the flawless expert.
	skill   SkillProfile
	skillSt skillState

	// pickups[i] is the estimated cargo position when phase i (a lift)
	// becomes active: the cargo's spec position, or the target of the
	// place phase that most recently moved it earlier in the graph.
	pickups []mathx.Vec3

	// Working geometry of the boom (matches dynamics.DefaultConfig).
	pivotUp    float64 // boom pivot height over the carrier origin
	pivotFwd   float64 // boom pivot offset toward the rear (+Z body)
	workLuff   float64 // preferred luff angle during cargo work
	boomLenMin float64 // shortest boom, bounding the reachable radius band
	snatchDist float64 // skill-mode latch reach, just inside LatchDist

	lastIdx    int // phase index the transient state below belongs to
	settleTime float64
	released   bool
	curPickup  mathx.Vec3 // live pickup estimate for the active lift node
}

// New builds an autopilot for crane 0 of the scenario spec.
func New(spec scenario.Spec) *Autopilot { return ForCrane(spec, 0) }

// ForCrane builds an autopilot assigned to one declared crane: it acts on
// the ScenarioState telemetry carrying that CraneID and interprets only
// the phase nodes owned by the crane.
func ForCrane(spec scenario.Spec, crane int) *Autopilot {
	a := &Autopilot{
		spec:     spec,
		crane:    crane,
		pivotUp:  2.4,
		pivotFwd: 1.0,
		workLuff: mathx.Rad(50),
		// Slightly inside the rig's latch reach: asserting the latch any
		// farther out would burn the rising edge on a miss and stall the
		// lift (the dynamics only retry on a fresh edge).
		snatchDist: dynamics.DefaultConfig().LatchDist * 0.97,
		boomLenMin: 10.2,
		lastIdx:    -1,
	}
	a.pickups = estimatePickups(spec)
	return a
}

// SetSkill installs a skill profile (the zero value restores the expert).
func (a *Autopilot) SetSkill(p SkillProfile) { a.skill = p }

// Crane returns the assigned carrier index.
func (a *Autopilot) Crane() int { return a.crane }

// NewAutopilot builds an autopilot for the classic linear exam over the
// course. For any other workload use New with a Spec.
func NewAutopilot(course scenario.Course) *Autopilot {
	return New(scenario.SpecFromCourse("exam", "Licensing exam", course))
}

// estimatePickups walks the phase graph in list order tracking where each
// cargo rests, so a lift that follows a place of the same cargo aims at
// the place target rather than the original spec position. The carried
// cargo is tracked per crane — the sub-graphs interleave in the list.
func estimatePickups(spec scenario.Spec) []mathx.Vec3 {
	est := make([]mathx.Vec3, len(spec.Cargos))
	for i, c := range spec.Cargos {
		est[i] = c.Pos
	}
	pickups := make([]mathx.Vec3, len(spec.Phases))
	carried := make([]int, spec.CraneCount()) // cargo picked by each crane's latest lift
	for c := range carried {
		carried[c] = -1
	}
	for i, ps := range spec.Phases {
		if ps.Crane < 0 || ps.Crane >= len(carried) {
			continue
		}
		switch ps.Kind {
		case scenario.PhaseLift:
			if ps.Cargo >= 0 && ps.Cargo < len(est) {
				pickups[i] = est[ps.Cargo]
				carried[ps.Crane] = ps.Cargo
			}
		case scenario.PhasePlace:
			if held := carried[ps.Crane]; held >= 0 && held < len(est) {
				est[held] = ps.Target
			}
		}
	}
	return pickups
}

// phaseIdx resolves the telemetry to a phase-graph index. Telemetry
// without an index (an older scenario LP on the wire) falls back to the
// first own-crane node matching the coarse phase; anything else out of
// range is clamped to an own-crane node — a mismatched spec revision must
// not panic the trainee.
func (a *Autopilot) phaseIdx(scen fom.ScenarioState) int {
	ownLast := 0
	for i, ps := range a.spec.Phases {
		if ps.Crane == a.crane {
			ownLast = i
		}
	}
	if scen.PhaseIndex == fom.PhaseIndexUnknown {
		for i, ps := range a.spec.Phases {
			if ps.Crane == a.crane && ps.Kind.FOMPhase() == scen.Phase {
				return i
			}
		}
		entry, _ := a.spec.EntryFor(a.crane)
		return entry
	}
	idx := int(scen.PhaseIndex)
	if idx < 0 || idx >= len(a.spec.Phases) || a.spec.Phases[idx].Crane != a.crane {
		idx = ownLast
	}
	return idx
}

// Control produces the next operator input for the current telemetry.
func (a *Autopilot) Control(st fom.CraneState, scen fom.ScenarioState, dt float64) fom.ControlInput {
	in := fom.ControlInput{Ignition: true}
	switch scen.Phase {
	case fom.PhaseIdle:
		// Engine on and wait for the scenario to arm.
		return in
	case fom.PhaseComplete, fom.PhaseFailed:
		in.Ignition = false
		return in
	}

	// Transient controller state (latch settling, release edge) belongs to
	// one phase node; starting another node resets it.
	idx := a.phaseIdx(scen)
	if idx != a.lastIdx {
		if a.spec.Phases[idx].Kind == scenario.PhaseLift {
			if a.lastIdx > idx {
				// Entered backwards — the drop-edge fallback. The cargo
				// just slipped off the hook, so it rests at the live
				// published position, not at the static pickup estimate.
				a.curPickup = st.CargoPos
			} else {
				a.curPickup = a.pickups[idx]
			}
		}
		a.lastIdx = idx
		a.settleTime = 0
		a.released = false
	}

	ps := a.spec.Phases[idx]
	switch ps.Kind {
	case scenario.PhaseDrive:
		a.drive(&in, st, ps.Target, ps.Radius)
	case scenario.PhaseLift:
		a.parkBrake(&in)
		if ps.Tandem && st.CargoHeld && st.CargoID == int64(ps.Cargo) {
			// Wait-for-partner gate: this hook is on the shared load but
			// the scenario has not advanced, so a partner hook is still
			// missing. Hold the latch and hover over the pick instead of
			// hauling on a load that must not leave the ground yet.
			a.holdTandem(&in, st)
		} else {
			a.lift(&in, st, a.curPickup, dt)
		}
	case scenario.PhaseTraverse:
		a.parkBrake(&in)
		a.traverse(&in, st, scen, ps)
	case scenario.PhasePlace:
		a.parkBrake(&in)
		a.putDown(&in, st, ps.Target, dt)
	}
	return a.skill.apply(in, dt, &a.skillSt)
}

// holdTandem keeps the latched hook steady over a grounded tandem load
// while the partner cranes finish their approach.
func (a *Autopilot) holdTandem(in *fom.ControlInput, st fom.CraneState) {
	in.HookLatch = true
	top := st.CargoPos.Add(mathx.V3(0, 0.6, 0))
	a.boomTo(in, st, top, top.Y+0.3, 0.8)
}

func (a *Autopilot) parkBrake(in *fom.ControlInput) {
	in.Brake = 1
	in.Gear = 0
}

// drive steers the carrier toward the parking spot with the hook stowed:
// the cable reeled in and the boom raised, so the dangling hook cannot
// sweep through site obstacles on the way in.
func (a *Autopilot) drive(in *fom.ControlInput, st fom.CraneState, target mathx.Vec3, radius float64) {
	if st.CableLen > 1.5 {
		in.HoistJoyY = -1 // reel in
	}
	in.BoomJoyY = mathx.Clamp(4*(mathx.Rad(35)-st.BoomLuff), -1, 1)

	dx := target.X - st.Position.X
	dz := target.Z - st.Position.Z
	dist := math.Hypot(dx, dz)

	bearing := math.Atan2(dx, -dz) // compass heading toward the target
	headErr := mathx.AngleDiff(bearing, st.Heading)
	in.Steering = mathx.Clamp(2.2*headErr, -1, 1)

	// Speed proportional to remaining distance, capped under the site
	// limit, braking into the parking spot.
	targetSpeed := mathx.Clamp(dist*0.35, 0, 7.0)
	if dist < radius*1.5 {
		targetSpeed = 1.0
	}
	if st.Speed < targetSpeed {
		in.Gear = 1
		in.Throttle = mathx.Clamp(0.25*(targetSpeed-st.Speed)+0.25, 0, 1)
	} else {
		in.Brake = mathx.Clamp(0.4*(st.Speed-targetSpeed), 0, 1)
	}
}

// boomTo commands swing/telescope/hoist so the hook approaches the point
// `target` (world space) at height targetY. slack is the radial standoff
// the caller tolerates (how far outside the target the hook may hover and
// still satisfy the phase — a gate radius, a latch reach): the boom only
// steepens beyond the working luff when even that slack cannot bridge the
// gap to the shortest boom's minimum radius.
func (a *Autopilot) boomTo(in *fom.ControlInput, st fom.CraneState, target mathx.Vec3, targetY, slack float64) {
	// Pivot position in world space (carrier assumed near-level while
	// parked on the test ground).
	sinH, cosH := math.Sincos(st.Heading)
	fwd := mathx.V3(sinH, 0, -cosH)
	pivot := st.Position.Add(fwd.Scale(-a.pivotFwd)) // pivot sits behind center
	pivot.Y += a.pivotUp

	dx := target.X - pivot.X
	dz := target.Z - pivot.Z
	wantRadius := math.Hypot(dx, dz)
	bearing := math.Atan2(dx, -dz)
	wantSwing := mathx.AngleDiff(bearing, st.Heading)

	// A sloppier trainee tolerates a wider stand-off before correcting.
	slack += a.skill.SlackBand

	// Swing toward the bearing.
	swingErr := mathx.AngleDiff(wantSwing, st.BoomSwing)
	in.BoomJoyX = mathx.Clamp(3*swingErr, -1, 1)

	// Hold the working luff — unless the target sits so far inside the
	// shortest boom's radius at that luff that hovering slack meters
	// outside it still misses the phase goal. Then raise the boom until
	// the wanted radius becomes reachable (telescoping alone cannot get
	// closer than boomLenMin·cos(luff)), staying inside the crane's safe
	// luffing band so close work does not trip the luff alarm. Courses
	// whose standoff fits the slack keep the constant working luff — the
	// calmer controller regime.
	if slack < 0.3 {
		slack = 0.3
	}
	wantLuff := a.workLuff
	steepening := false
	if minR := a.boomLenMin * math.Cos(a.workLuff); wantRadius < minR-slack {
		wantLuff = math.Acos(mathx.Clamp(wantRadius/a.boomLenMin, 0.1, 0.99))
		wantLuff = mathx.Clamp(wantLuff, mathx.Rad(20), mathx.Rad(74))
		steepening = wantLuff > st.BoomLuff
	}
	luffErr := wantLuff - st.BoomLuff
	if steepening {
		// Raise slowly: the hoist winch (1.4 m/s) must keep pace with the
		// boom tip's climb or the cable goes slack / the load drags low.
		in.BoomJoyY = mathx.Clamp(luffErr, 0, 0.35)
	} else {
		in.BoomJoyY = mathx.Clamp(4*luffErr, -1, 1)
	}

	// Telescope to the required radius.
	curRadius := st.BoomLen * math.Cos(st.BoomLuff)
	radiusErr := wantRadius - curRadius
	in.HoistJoyX = mathx.Clamp(1.5*radiusErr, -1, 1)

	// Hoist the cable so the hook's rest position sits at targetY. The
	// servo tracks cable length against the boom-tip height — never the
	// live hook height, which oscillates with the pendulum: a hook-height
	// servo reels on the downswing and pays out on the upswing, pumping
	// the pendulum exactly like a playground swing.
	tipY := st.Position.Y + a.pivotUp + st.BoomLen*math.Sin(st.BoomLuff)
	cableTarget := tipY - targetY
	in.HoistJoyY = mathx.Clamp(0.8*(cableTarget-st.CableLen), -1, 1)
}

// barTop returns a safe carry height above the tallest bar.
func (a *Autopilot) barTop() float64 {
	top := 0.0
	for _, b := range a.spec.Course.Bars {
		if h := b.Pos.Y + b.Half.Y; h > top {
			top = h
		}
	}
	return top + 1.6
}

// lift positions the hook over the cargo, descends and latches. est is the
// cargo's estimated resting position; the published CargoPos takes over
// for the final approach once the hook is nearby.
func (a *Autopilot) lift(in *fom.ControlInput, st fom.CraneState, est mathx.Vec3, dt float64) {
	target := est
	if math.Hypot(st.HookPos.X-est.X, st.HookPos.Z-est.Z) < 3 {
		target = st.CargoPos
	}
	cargoTop := target.Add(mathx.V3(0, 0.6, 0))
	horiz := math.Hypot(st.HookPos.X-cargoTop.X, st.HookPos.Z-cargoTop.Z)
	// A lagged trainee cannot settle the hook dead over the load — wind
	// or their own overshoot keeps the pendulum in a limit cycle — so
	// they snatch the sling whenever the hook swings within reach. The
	// latch drops again once the pass is over, re-arming the edge for the
	// next try. The expert keeps the classic settle-then-latch behavior.
	if !a.skill.IsZero() && st.HookPos.Dist(cargoTop) < a.snatchDist {
		in.HookLatch = true
	}
	if horiz > 0.8 {
		// Align above the cargo first, hook held high enough to clear any
		// bars between here and there.
		a.boomTo(in, st, cargoTop, math.Max(cargoTop.Y+3, a.barTop()+1), 0.5)
		a.settleTime = 0
		return
	}
	// Descend onto the cargo and close the latch when near.
	a.boomTo(in, st, cargoTop, cargoTop.Y, 0.5)
	if st.HookPos.Dist(cargoTop) < 1.2 {
		a.settleTime += dt
		if a.settleTime > 0.3 { // let the hook settle before latching
			in.HookLatch = true
		}
	}
}

// traverse carries the cargo through the phase's waypoints above bar
// height.
func (a *Autopilot) traverse(in *fom.ControlInput, st fom.CraneState, scen fom.ScenarioState, ps scenario.PhaseSpec) {
	in.HookLatch = true // keep holding
	wpIdx := int(scen.Waypoint)
	if wpIdx >= len(ps.Waypoints) {
		wpIdx = len(ps.Waypoints) - 1
	}
	wp := ps.Waypoints[wpIdx]
	carryY := a.barTop() + 0.8 // cargo bottom clears the bars
	// The hook rides 0.6 m above the cargo center (latch offset) plus the
	// 0.6 m cargo half height.
	hookY := carryY + 1.2
	a.boomTo(in, st, wp, hookY, ps.Radius*0.75)
	// Lift before you slew: while the hook hangs below carry height —
	// after a boom reconfiguration dropped the tip — translating at full
	// rate would sweep the low cargo through the bar field.
	if st.HookPos.Y < hookY-1.0 {
		in.BoomJoyX *= 0.2
		in.HoistJoyX *= 0.2
	}
}

// putDown brings the cargo to the target, lowers it and releases.
func (a *Autopilot) putDown(in *fom.ControlInput, st fom.CraneState, target mathx.Vec3, dt float64) {
	if a.released {
		in.HookLatch = false
		return
	}
	in.HookLatch = true
	horiz := math.Hypot(st.CargoPos.X-target.X, st.CargoPos.Z-target.Z)
	if horiz > 1.2 {
		a.boomTo(in, st, target, a.barTop()+2, 0.8)
		return
	}
	// Over the target: lower until the cargo grounds, then let go.
	a.boomTo(in, st, target, st.Position.Y+1.2, 0.8)
	if st.CargoPos.Y < st.Position.Y+1.4 {
		a.settleTime += dt
		if a.settleTime > 0.4 {
			in.HookLatch = false
			a.released = true
		}
	}
}
