package trace

import (
	"context"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/scenario"
)

// TestTandemBeamCompletes proves the flagship tandem lift end to end
// headless: two autopilots, one shared beam, both hooks gated. (The
// library acceptance test also covers it; this pins the tandem-specific
// invariants.)
func TestTandemBeamCompletes(t *testing.T) {
	spec := scenario.TandemBeam()
	res, err := Run(spec, 900)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Phase != fom.PhaseComplete {
		t.Fatalf("phase %v score %.1f (%s)", res.State.Phase, res.State.Score, res.State.Message)
	}
	if res.State.Collisions != 0 {
		t.Errorf("tandem pair struck %d bars", res.State.Collisions)
	}
	t.Logf("tandem beam: score %.1f in %.1f sim-seconds", res.State.Score, res.SimTime)
}

// TestTwinYardCompletes proves the staggered two-crane yard headless.
func TestTwinYardCompletes(t *testing.T) {
	res, err := Run(scenario.TwinYard(), 900)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.Phase != fom.PhaseComplete {
		t.Fatalf("phase %v score %.1f (%s)", res.State.Phase, res.State.Score, res.State.Message)
	}
}

// TestForCraneWalksOwnSubgraph pins the crane assignment: autopilots
// resolve foreign-crane telemetry onto their own nodes.
func TestForCraneWalksOwnSubgraph(t *testing.T) {
	spec := scenario.TandemBeam()
	ap := ForCrane(spec, 1)
	if ap.Crane() != 1 {
		t.Fatalf("Crane() = %d", ap.Crane())
	}
	// Coarse-phase fallback (old scenario LP on the wire) lands on crane
	// 1's drive node, not crane 0's.
	scen := fom.ScenarioState{Phase: fom.PhaseDriving, PhaseIndex: fom.PhaseIndexUnknown, CraneID: 1}
	in := ap.Control(fom.CraneState{CraneID: 1}, scen, 0.1)
	if !in.Ignition {
		t.Error("fallback control lost ignition")
	}
	// A PhaseIndex pointing at another crane's node is clamped onto the
	// assigned crane's sub-graph instead of driving someone else's phase.
	scen = fom.ScenarioState{Phase: fom.PhaseLifting, PhaseIndex: 2 /* crane 0's lift */, CraneID: 1}
	in = ap.Control(fom.CraneState{CraneID: 1}, scen, 0.1)
	if !in.Ignition {
		t.Error("clamped control lost ignition")
	}
}

// TestTandemNoviceJitterRecovers is the sloppy-sweep recovery proof for
// the choreography reset: jittered novices fly the tandem beam across
// several seeds, and every run must reach a terminal verdict — a drop
// mid-carry now pulls both cursors back to the tandem lift gate together,
// so a fumbled run degrades its score instead of wedging the sweep on two
// disagreeing cursors.
func TestTandemNoviceJitterRecovers(t *testing.T) {
	spec := scenario.TandemBeam()
	p := SkillNovice()
	p.Jitter = 0.35
	for seed := int64(1); seed <= 4; seed++ {
		res, err := RunSkill(context.Background(), spec, 1800, p.Seeded(seed))
		if err != nil {
			t.Fatalf("seed %d never terminated: %v", seed, err)
		}
		if res.State.Phase != fom.PhaseComplete && res.State.Phase != fom.PhaseFailed {
			t.Fatalf("seed %d ended in %v", seed, res.State.Phase)
		}
		t.Logf("seed %d: %v score %.1f in %.0f sim-seconds",
			seed, res.State.Phase, res.State.Score, res.SimTime)
	}
}
