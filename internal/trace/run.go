package trace

import (
	"fmt"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// RunResult reports one headless scenario run.
type RunResult struct {
	Scenario string
	State    fom.ScenarioState // terminal scenario state
	SimTime  float64           // simulated seconds consumed
	Passed   bool
}

// Run executes a scenario spec headless — dynamics, engine and autopilot
// coupled directly at 60 Hz, no federation — until the scenario reaches a
// terminal phase or maxSim simulated seconds elapse. This is the fast path
// for regression tables and batch smoke runs; the cluster path in package
// sim runs the same spec across the full federation.
func Run(spec scenario.Spec, maxSim float64) (RunResult, error) {
	res := RunResult{Scenario: spec.Name}
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return res, err
	}
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, spec.Course.Start, spec.Course.StartYaw)
	if err != nil {
		return res, err
	}
	spec.Install(model, ter)

	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return res, err
	}
	eng.Start()
	ap := New(spec)

	const dt = 1.0 / 60
	for res.SimTime = 0; res.SimTime < maxSim; res.SimTime += dt {
		scen := eng.State()
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(model.State(), scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	res.State = eng.State()
	res.Passed = res.State.Phase == fom.PhaseComplete
	if res.State.Phase != fom.PhaseComplete && res.State.Phase != fom.PhaseFailed {
		return res, fmt.Errorf("trace: scenario %s still %v after %.0f sim-seconds (%s)",
			spec.Name, res.State.Phase, maxSim, res.State.Message)
	}
	return res, nil
}
