package trace

import (
	"context"
	"errors"
	"fmt"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// ErrIncomplete marks a run that reached neither terminal phase within its
// sim-time budget: the trainee was still working when time ran out. Run's
// timeout error wraps it, so callers can tell "did not finish" apart from
// setup failures and cancellation with errors.Is.
var ErrIncomplete = errors.New("scenario incomplete within sim-time budget")

// RunResult reports one headless scenario run.
type RunResult struct {
	Scenario string
	State    fom.ScenarioState // terminal combined scenario state
	SimTime  float64           // simulated seconds consumed
	Passed   bool
	Alarms   uint32 // alarm lamps raised during the run (engine count)
}

// Run executes a scenario spec headless — one dynamics rig and one
// autopilot per declared crane coupled directly to the engine at 60 Hz,
// no federation — until the scenario reaches a terminal phase or maxSim
// simulated seconds elapse. This is the fast path for regression tables
// and batch smoke runs; the cluster path in package sim runs the same
// spec across the full federation.
func Run(spec scenario.Spec, maxSim float64) (RunResult, error) {
	return RunContext(context.Background(), spec, maxSim)
}

// RunContext is Run with cancellation: a canceled context stops the
// stepping loop within one simulated second and returns ctx.Err() with the
// state reached so far, so a batch coordinator can abandon a shard without
// waiting out its sim-time budget.
func RunContext(ctx context.Context, spec scenario.Spec, maxSim float64) (RunResult, error) {
	return RunSkill(ctx, spec, maxSim, SkillProfile{})
}

// RunSkill is RunContext with a trainee skill profile: every crane's
// autopilot flies with the given sloppiness (the zero profile is the
// classic expert). Sweeping the presets over a scenario matrix yields
// realistic score distributions instead of near-perfect runs.
func RunSkill(ctx context.Context, spec scenario.Spec, maxSim float64, skill SkillProfile) (RunResult, error) {
	res := RunResult{Scenario: spec.Name}
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return res, err
	}
	decls := spec.CraneDecls()
	world := dynamics.NewWorld()
	models := make([]*dynamics.Model, len(decls))
	pilots := make([]*Autopilot, len(decls))
	for c, d := range decls {
		models[c], err = dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, c)
		if err != nil {
			return res, err
		}
		pilots[c] = ForCrane(spec, c)
		pilots[c].SetSkill(skill)
	}
	spec.Install(ter, models...)

	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return res, err
	}
	eng.Start()

	const dt = 1.0 / 60
	steps := 0
	states := make([]fom.CraneState, len(models))
	for res.SimTime = 0; res.SimTime < maxSim; res.SimTime += dt {
		// Checking the context every simulated second keeps the hot loop
		// free of per-step synchronization.
		if steps%60 == 0 && ctx.Err() != nil {
			res.State = eng.State()
			res.Alarms = eng.AlarmEvents()
			return res, ctx.Err()
		}
		steps++
		if p := eng.Phase(); p == fom.PhaseComplete || p == fom.PhaseFailed {
			break
		}
		for c, m := range models {
			in := pilots[c].Control(m.State(), eng.StateFor(c), dt)
			in.CraneID = int64(c)
			m.Step(in, dt)
		}
		for c, m := range models {
			states[c] = m.State()
		}
		eng.StepAll(states, dt)
	}
	res.State = eng.State()
	res.Alarms = eng.AlarmEvents()
	res.Passed = res.State.Phase == fom.PhaseComplete
	if res.State.Phase != fom.PhaseComplete && res.State.Phase != fom.PhaseFailed {
		return res, fmt.Errorf("trace: scenario %s still %v after %.0f sim-seconds (%s): %w",
			spec.Name, res.State.Phase, maxSim, res.State.Message, ErrIncomplete)
	}
	return res, nil
}

// Completable is the completability oracle's dry-run entry point: it flies
// the spec headless with the flawless expert autopilot and reports whether
// the scenario was passed within maxSim simulated seconds. ok is false
// both for a failed verdict (score under the pass mark) and for a run that
// never reached a terminal phase; err carries only genuine faults — a spec
// or rig that cannot be built, or ctx canceled mid-run — so a campaign
// generator can resample on !ok and abort on err.
func Completable(ctx context.Context, spec scenario.Spec, maxSim float64) (RunResult, bool, error) {
	res, err := RunContext(ctx, spec, maxSim)
	if errors.Is(err, ErrIncomplete) {
		return res, false, nil
	}
	if err != nil {
		return res, false, err
	}
	return res, res.Passed, nil
}
