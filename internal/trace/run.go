package trace

import (
	"context"
	"fmt"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// RunResult reports one headless scenario run.
type RunResult struct {
	Scenario string
	State    fom.ScenarioState // terminal scenario state
	SimTime  float64           // simulated seconds consumed
	Passed   bool
}

// Run executes a scenario spec headless — dynamics, engine and autopilot
// coupled directly at 60 Hz, no federation — until the scenario reaches a
// terminal phase or maxSim simulated seconds elapse. This is the fast path
// for regression tables and batch smoke runs; the cluster path in package
// sim runs the same spec across the full federation.
func Run(spec scenario.Spec, maxSim float64) (RunResult, error) {
	return RunContext(context.Background(), spec, maxSim)
}

// RunContext is Run with cancellation: a canceled context stops the
// stepping loop within one simulated second and returns ctx.Err() with the
// state reached so far, so a batch coordinator can abandon a shard without
// waiting out its sim-time budget.
func RunContext(ctx context.Context, spec scenario.Spec, maxSim float64) (RunResult, error) {
	res := RunResult{Scenario: spec.Name}
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return res, err
	}
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, spec.Course.Start, spec.Course.StartYaw)
	if err != nil {
		return res, err
	}
	spec.Install(model, ter)

	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return res, err
	}
	eng.Start()
	ap := New(spec)

	const dt = 1.0 / 60
	steps := 0
	for res.SimTime = 0; res.SimTime < maxSim; res.SimTime += dt {
		// Checking the context every simulated second keeps the hot loop
		// free of per-step synchronization.
		if steps%60 == 0 && ctx.Err() != nil {
			res.State = eng.State()
			return res, ctx.Err()
		}
		steps++
		scen := eng.State()
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(model.State(), scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	res.State = eng.State()
	res.Passed = res.State.Phase == fom.PhaseComplete
	if res.State.Phase != fom.PhaseComplete && res.State.Phase != fom.PhaseFailed {
		return res, fmt.Errorf("trace: scenario %s still %v after %.0f sim-seconds (%s)",
			spec.Name, res.State.Phase, maxSim, res.State.Message)
	}
	return res, nil
}
