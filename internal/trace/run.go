package trace

import (
	"context"
	"errors"
	"fmt"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// ErrIncomplete marks a run that reached neither terminal phase within its
// sim-time budget: the trainee was still working when time ran out. Run's
// timeout error wraps it, so callers can tell "did not finish" apart from
// setup failures and cancellation with errors.Is.
var ErrIncomplete = errors.New("scenario incomplete within sim-time budget")

// ErrStalled marks a dry-run aborted by the early-exit check: no crane's
// phase cursor advanced within the stall budget, so the run could not have
// completed no matter how much budget remained. It wraps ErrIncomplete, so
// every caller that already treats "incomplete" as a failed verdict (not a
// fault) handles stalls identically.
var ErrStalled = fmt.Errorf("no phase progress within the stall budget: %w", ErrIncomplete)

// DefaultStallBudget is the early-exit window, in simulated seconds, that
// Completable applies to oracle dry-runs. Calibration: the longest gap
// between phase-cursor advances across the shipped library flown by the
// slowest supported trainee (the novice preset) is ~71 sim-seconds — the
// heavy-derate carry leg — so 180 s is ~2.5× that worst legitimate gap.
// The expert the oracle actually flies progresses faster still; the
// calibration test in this package measures the gap, and a verdict-
// equivalence sweep over the library and a generated corpus backs the
// margin (see gen's oracle tests).
const DefaultStallBudget = 180.0

// RunResult reports one headless scenario run.
type RunResult struct {
	Scenario string
	State    fom.ScenarioState // terminal combined scenario state
	SimTime  float64           // simulated seconds consumed
	Passed   bool
	Alarms   uint32 // alarm lamps raised during the run (engine count)
}

// Runner owns the reusable scratch of one headless running goroutine: the
// per-crane state slices a run steps over. Reusing a Runner across many
// runs (a campaign worker slot, an oracle certification loop) keeps the
// steady-state stepping path free of allocations; the zero value is ready
// to use. Not safe for concurrent use — one Runner per goroutine.
type Runner struct {
	// StallBudget, when positive, aborts a run with ErrStalled once no
	// crane's phase cursor has advanced for that many simulated seconds.
	// Zero disables the early exit: the run uses its full maxSim budget,
	// exactly as the pre-early-exit semantics. Completable sets
	// DefaultStallBudget; sweeps that fly deliberately slow trainees keep 0.
	StallBudget float64

	states []fom.CraneState
	models []*dynamics.Model
	pilots []*Autopilot
}

// NewRunner returns an empty Runner. Equivalent to new(Runner); the
// constructor exists for call-site clarity.
func NewRunner() *Runner { return &Runner{} }

// Run executes a scenario spec headless — one dynamics rig and one
// autopilot per declared crane coupled directly to the engine at 60 Hz,
// no federation — until the scenario reaches a terminal phase or maxSim
// simulated seconds elapse. This is the fast path for regression tables
// and batch smoke runs; the cluster path in package sim runs the same
// spec across the full federation.
func Run(spec scenario.Spec, maxSim float64) (RunResult, error) {
	return RunContext(context.Background(), spec, maxSim)
}

// RunContext is Run with cancellation: a canceled context stops the
// stepping loop within one simulated second and returns ctx.Err() with the
// state reached so far, so a batch coordinator can abandon a shard without
// waiting out its sim-time budget.
func RunContext(ctx context.Context, spec scenario.Spec, maxSim float64) (RunResult, error) {
	return RunSkill(ctx, spec, maxSim, SkillProfile{})
}

// RunSkill is RunContext with a trainee skill profile: every crane's
// autopilot flies with the given sloppiness (the zero profile is the
// classic expert). Sweeping the presets over a scenario matrix yields
// realistic score distributions instead of near-perfect runs.
func RunSkill(ctx context.Context, spec scenario.Spec, maxSim float64, skill SkillProfile) (RunResult, error) {
	return (&Runner{}).RunSkill(ctx, spec, maxSim, skill)
}

// RunSkill runs one scenario on the Runner's scratch; see the package
// function of the same name for semantics. The shared default site is
// used for every run, and the engine runs with live status text off —
// messages still mark every phase transition, they just skip the per-tick
// distance refresh no headless consumer reads.
func (r *Runner) RunSkill(ctx context.Context, spec scenario.Spec, maxSim float64, skill SkillProfile) (RunResult, error) {
	res := RunResult{Scenario: spec.Name}
	ter := terrain.DefaultMap()
	decls := spec.CraneDecls()
	world := dynamics.NewWorld()
	models := r.grow(len(decls))
	var err error
	for c, d := range decls {
		models[c], err = dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, c)
		if err != nil {
			return res, err
		}
		r.pilots[c] = ForCrane(spec, c)
		r.pilots[c].SetSkill(skill)
	}
	spec.Install(ter, models...)

	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return res, err
	}
	eng.SetLiveStatus(false)
	eng.Start()

	const dt = 1.0 / 60
	steps := 0
	pilots, states := r.pilots, r.states
	for c, m := range models {
		states[c] = m.State()
	}
	progress, progressAt := eng.Progress(), 0.0
	for res.SimTime = 0; res.SimTime < maxSim; res.SimTime += dt {
		// Checking the context (and the stall window) every simulated
		// second keeps the hot loop free of per-step synchronization.
		if steps%60 == 0 {
			if ctx.Err() != nil {
				res.State = eng.State()
				res.Alarms = eng.AlarmEvents()
				return res, ctx.Err()
			}
			if r.StallBudget > 0 {
				if p := eng.Progress(); p != progress {
					progress, progressAt = p, res.SimTime
				} else if res.SimTime-progressAt >= r.StallBudget {
					res.State = eng.State()
					res.Alarms = eng.AlarmEvents()
					return res, fmt.Errorf("trace: scenario %s still %v at %.0f sim-seconds (%s): %w",
						spec.Name, res.State.Phase, res.SimTime, res.State.Message, ErrStalled)
				}
			}
		}
		steps++
		if p := eng.Phase(); p == fom.PhaseComplete || p == fom.PhaseFailed {
			break
		}
		// states[c] still holds crane c's post-step state from the previous
		// tick — exactly what m.State() would return here — so the pilot
		// reads it instead of copying the state out of the model twice.
		for c, m := range models {
			in := pilots[c].Control(states[c], eng.StateFor(c), dt)
			in.CraneID = int64(c)
			m.Step(in, dt)
			states[c] = m.State()
		}
		eng.StepAll(states, dt)
	}
	res.State = eng.State()
	res.Alarms = eng.AlarmEvents()
	res.Passed = res.State.Phase == fom.PhaseComplete
	if res.State.Phase != fom.PhaseComplete && res.State.Phase != fom.PhaseFailed {
		return res, fmt.Errorf("trace: scenario %s still %v after %.0f sim-seconds (%s): %w",
			spec.Name, res.State.Phase, maxSim, res.State.Message, ErrIncomplete)
	}
	return res, nil
}

// grow resizes the Runner's scratch slices for n cranes and returns the
// model slice; previous contents are dropped.
func (r *Runner) grow(n int) []*dynamics.Model {
	if cap(r.models) < n {
		r.models = make([]*dynamics.Model, n)
		r.pilots = make([]*Autopilot, n)
		r.states = make([]fom.CraneState, n)
	}
	r.models = r.models[:n]
	r.pilots = r.pilots[:n]
	r.states = r.states[:n]
	return r.models
}

// Completable is the completability oracle's dry-run entry point: it flies
// the spec headless with the flawless expert autopilot and reports whether
// the scenario was passed within maxSim simulated seconds. The run early-
// exits (verdict false) once no phase cursor advances for
// DefaultStallBudget simulated seconds — a hopeless candidate costs a
// stall window, not the full budget, and the novice-calibrated window
// cannot fire on a run an expert could still complete. ok is false both
// for a failed verdict (score under the pass mark) and for a run that
// never reached a terminal phase; err carries only genuine faults — a spec
// or rig that cannot be built, or ctx canceled mid-run — so a campaign
// generator can resample on !ok and abort on err.
func Completable(ctx context.Context, spec scenario.Spec, maxSim float64) (RunResult, bool, error) {
	res, err := (&Runner{StallBudget: DefaultStallBudget}).RunSkill(ctx, spec, maxSim, SkillProfile{})
	if errors.Is(err, ErrIncomplete) {
		return res, false, nil
	}
	if err != nil {
		return res, false, err
	}
	return res, res.Passed, nil
}
