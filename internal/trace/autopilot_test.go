package trace

import (
	"testing"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// TestAutopilotCompletesExam is the closed-loop end-to-end check: the
// synthetic trainee must drive to the test ground, lift the cargo, carry
// it through the whole trajectory and set it back down, passing the exam.
func TestAutopilotCompletesExam(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	course := scenario.DefaultCourse()
	model, err := dynamics.New(dynamics.DefaultConfig(), ter,
		course.Start, course.StartYaw)
	if err != nil {
		t.Fatal(err)
	}
	cargoPos := course.Circle
	cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
	model.PlaceCargo(cargoPos, course.CargoMass)

	eng := scenario.NewEngine(course, crane.DefaultSpec(), scenario.DefaultScore())
	eng.Start()
	ap := NewAutopilot(course)

	const (
		dt     = 1.0 / 60
		maxSim = 600.0 // sim seconds before declaring a hang
	)
	var simT float64
	var lastPhase fom.Phase
	for simT = 0; simT < maxSim; simT += dt {
		st := model.State()
		scen := eng.State()
		if scen.Phase != lastPhase {
			t.Logf("t=%6.1f phase=%v score=%.1f msg=%q", simT, scen.Phase, scen.Score, scen.Message)
			lastPhase = scen.Phase
		}
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(st, scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}

	final := eng.State()
	st := model.State()
	if final.Phase != fom.PhaseComplete {
		t.Fatalf("exam did not complete: phase=%v score=%.1f waypoint=%d/%d msg=%q "+
			"pos=%v hook=%v cargoHeld=%v after %.0f s",
			final.Phase, final.Score, final.Waypoint, len(course.Waypoints),
			final.Message, st.Position, st.HookPos, st.CargoHeld, simT)
	}
	if final.Score < scenario.DefaultScore().PassMark {
		t.Errorf("score = %.1f below pass mark", final.Score)
	}
	if final.Collisions != 0 {
		t.Errorf("autopilot hit %d bars (carries above them)", final.Collisions)
	}
	if simT > course.ParTime+120 {
		t.Errorf("exam took %.0f s, want near par %v", simT, course.ParTime)
	}
	t.Logf("exam complete: %.1f points in %.1f s", final.Score, simT)
}

// TestAutopilotCompletesAdvancedCourse proves the harder shipped course
// (six bars, heavier cargo, tighter gates) is actually completable.
func TestAutopilotCompletesAdvancedCourse(t *testing.T) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	course := scenario.AdvancedCourse()
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
	if err != nil {
		t.Fatal(err)
	}
	cargoPos := course.Circle
	cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
	model.PlaceCargo(cargoPos, course.CargoMass)

	eng := scenario.NewEngine(course, crane.DefaultSpec(), scenario.DefaultScore())
	eng.Start()
	ap := NewAutopilot(course)

	const dt = 1.0 / 60
	var simT float64
	for simT = 0; simT < 600; simT += dt {
		scen := eng.State()
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(model.State(), scen, dt)
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	final := eng.State()
	if final.Phase != fom.PhaseComplete {
		t.Fatalf("advanced exam: phase=%v score=%.1f wp=%d/%d msg=%q after %.0f s",
			final.Phase, final.Score, final.Waypoint, len(course.Waypoints),
			final.Message, simT)
	}
	if final.Collisions != 0 {
		t.Errorf("autopilot hit %d bars on the advanced course", final.Collisions)
	}
	t.Logf("advanced exam complete: %.1f points in %.1f s", final.Score, simT)
}

// TestAutopilotIdleAndDone covers the trivial phases.
func TestAutopilotIdleAndDone(t *testing.T) {
	course := scenario.DefaultCourse()
	ap := NewAutopilot(course)
	in := ap.Control(fom.CraneState{}, fom.ScenarioState{Phase: fom.PhaseIdle}, 0.1)
	if !in.Ignition {
		t.Error("idle should keep ignition on")
	}
	in = ap.Control(fom.CraneState{}, fom.ScenarioState{Phase: fom.PhaseComplete}, 0.1)
	if in.Ignition {
		t.Error("complete should shut the engine off")
	}
}

// TestAutopilotDriveSteersTowardTarget checks the drive controller's
// steering sense without running the full exam.
func TestAutopilotDriveSteersTowardTarget(t *testing.T) {
	course := scenario.DefaultCourse()
	ap := NewAutopilot(course)
	// Carrier north-west of the target, facing north (away): must steer
	// hard to come about, with throttle applied.
	st := fom.CraneState{Position: mathx.V3(course.DriveTarget.X-50, 0, course.DriveTarget.Z-50)}
	in := ap.Control(st, fom.ScenarioState{Phase: fom.PhaseDriving}, 0.1)
	if in.Gear != 1 || in.Throttle <= 0 {
		t.Errorf("no forward drive: %+v", in)
	}
	if in.Steering == 0 {
		t.Error("no steering toward target")
	}
}
