package trace

import (
	"context"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/scenario"
)

// TestSkillByName covers the preset registry.
func TestSkillByName(t *testing.T) {
	for _, name := range SkillNames() {
		p, err := SkillByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s resolved to %q", name, p.Name)
		}
	}
	if p, err := SkillByName(""); err != nil || !p.IsZero() {
		t.Errorf("empty skill: %+v, %v", p, err)
	}
	if _, err := SkillByName("wizard"); err == nil {
		t.Error("unknown skill accepted")
	}
}

// TestSkillExpertIsIdentity pins the no-drift guarantee: the zero profile
// must hand the controller's input through untouched.
func TestSkillExpertIsIdentity(t *testing.T) {
	in := fom.ControlInput{Steering: 0.4, Throttle: 0.8, BoomJoyX: -0.7, HoistJoyY: 0.3, Ignition: true}
	var st skillState
	if got := (SkillProfile{}).apply(in, 1.0/60, &st); got != in {
		t.Fatalf("zero profile changed the input: %+v vs %+v", got, in)
	}
}

// TestSkillLagSmoothsAxes pins the reaction-lag model: a step command is
// approached gradually, never exceeded.
func TestSkillLagSmoothsAxes(t *testing.T) {
	p := SkillProfile{ReactionLag: 0.5}
	var st skillState
	in := fom.ControlInput{BoomJoyX: 1}
	first := p.apply(in, 1.0/60, &st)
	if first.BoomJoyX <= 0 || first.BoomJoyX >= 1 {
		t.Fatalf("first lagged step = %v, want within (0,1)", first.BoomJoyX)
	}
	prev := first.BoomJoyX
	for i := 0; i < 120; i++ {
		out := p.apply(in, 1.0/60, &st)
		if out.BoomJoyX < prev-1e-12 || out.BoomJoyX > 1 {
			t.Fatalf("lagged axis left [prev,1]: %v after %v", out.BoomJoyX, prev)
		}
		prev = out.BoomJoyX
	}
	if prev < 0.9 {
		t.Errorf("axis only reached %v after 2 s of lag 0.5 s", prev)
	}
}

// TestSkillSpreadOnClassicExam runs the skill ladder over the classic
// exam: every preset must complete, and the sloppier hands must not beat
// the expert — the realistic-score-spread property the sweeps rely on.
func TestSkillSpreadOnClassicExam(t *testing.T) {
	spec := scenario.Classic()
	var scores []float64
	for _, sk := range []SkillProfile{SkillExpert(), SkillIntermediate(), SkillNovice()} {
		res, err := RunSkill(context.Background(), spec, 1200, sk)
		if err != nil {
			t.Fatalf("%s: %v", sk.Name, err)
		}
		if res.State.Phase != fom.PhaseComplete {
			t.Fatalf("%s: phase %v score %.1f (%s)", sk.Name, res.State.Phase, res.State.Score, res.State.Message)
		}
		t.Logf("%-12s score %.1f alarms %d in %.1f sim-seconds", sk.Name, res.State.Score, res.Alarms, res.SimTime)
		scores = append(scores, res.State.Score)
	}
	if scores[1] > scores[0] || scores[2] > scores[0] {
		t.Errorf("sloppy hands beat the expert: %v", scores)
	}
	if scores[2] >= scores[0] {
		t.Errorf("novice matched the expert exactly (%v) — no spread for sweeps", scores)
	}
}

// TestSeededZeroJitterIsIdentity pins the golden-score guarantee: without
// Jitter, Seeded must return the profile bit-identical for any seed.
func TestSeededZeroJitterIsIdentity(t *testing.T) {
	for _, name := range SkillNames() {
		p, _ := SkillByName(name)
		for _, seed := range []int64{0, 1, 42, -7} {
			if got := p.Seeded(seed); got != p {
				t.Errorf("%s.Seeded(%d) = %+v, want identity", name, seed, got)
			}
		}
	}
}

// TestSeededJitterDeterministicSpread: the same seed reproduces the same
// profile, different seeds diverge, every factor stays within the band,
// and seeding is idempotent (Jitter is consumed).
func TestSeededJitterDeterministicSpread(t *testing.T) {
	p := SkillNovice()
	p.Jitter = 0.3
	a, b := p.Seeded(7), p.Seeded(7)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Jitter != 0 {
		t.Fatalf("Seeded left Jitter = %v", a.Jitter)
	}
	if again := a.Seeded(99); again != a {
		t.Fatalf("re-seeding a materialized profile changed it: %+v", again)
	}
	distinct := 0
	for seed := int64(1); seed <= 16; seed++ {
		q := p.Seeded(seed)
		if q != a {
			distinct++
		}
		base := SkillNovice()
		check := func(axis string, got, want float64) {
			lo, hi := want*(1-p.Jitter), want*(1+p.Jitter)
			if got < lo-1e-12 || got > hi+1e-12 {
				t.Errorf("seed %d: %s = %v outside [%v, %v]", seed, axis, got, lo, hi)
			}
		}
		check("lag", q.ReactionLag, base.ReactionLag)
		check("overshoot", q.Overshoot, base.Overshoot)
		check("slack", q.SlackBand, base.SlackBand)
	}
	if distinct < 14 {
		t.Errorf("only %d/16 seeds produced distinct profiles", distinct)
	}
}

// TestRunSkillJitterWidensRuns: jittered novices complete the classic
// exam with per-seed distinct (but individually reproducible) runs — the
// continuous observable is the time the sloppier or crisper hands take.
func TestRunSkillJitterWidensRuns(t *testing.T) {
	spec := scenario.Classic()
	p := SkillNovice()
	p.Jitter = 0.4
	times := map[float64]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := RunSkill(context.Background(), spec, 1800, p.Seeded(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		times[res.SimTime] = true
		// Determinism: the same seed must reproduce the same run exactly.
		res2, err := RunSkill(context.Background(), spec, 1800, p.Seeded(seed))
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if res2.SimTime != res.SimTime || res2.State.Score != res.State.Score {
			t.Fatalf("seed %d runs diverged: %.2fs/%.1f vs %.2fs/%.1f",
				seed, res.SimTime, res.State.Score, res2.SimTime, res2.State.Score)
		}
	}
	if len(times) < 2 {
		t.Errorf("3 jittered seeds produced %d distinct run time(s), want a spread", len(times))
	}
}
