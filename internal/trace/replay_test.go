package trace

import (
	"bytes"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// examRig bundles one fresh headless exam setup.
type examRig struct {
	model *dynamics.Model
	eng   *scenario.Engine
}

func newExamRig(t *testing.T) *examRig {
	t.Helper()
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		t.Fatal(err)
	}
	course := scenario.DefaultCourse()
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
	if err != nil {
		t.Fatal(err)
	}
	cargoPos := course.Circle
	cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
	model.PlaceCargo(cargoPos, course.CargoMass)
	eng := scenario.NewEngine(course, crane.DefaultSpec(), scenario.DefaultScore())
	eng.Start()
	return &examRig{model: model, eng: eng}
}

// TestRecordedExamReplaysIdentically records the autopilot's control frames
// during a live exam, serializes the trace, reads it back, and replays it
// into a completely fresh simulation: because the physics is deterministic
// fixed-step, the replay must reproduce the same final phase, score and
// collision count — the property that makes recorded training sessions
// reviewable.
func TestRecordedExamReplaysIdentically(t *testing.T) {
	const dt = 1.0 / 60
	course := scenario.DefaultCourse()

	// --- Live run with recording. ---
	live := newExamRig(t)
	ap := NewAutopilot(course)
	var rec Recorder
	var liveFinal fom.ScenarioState
	for simT := 0.0; simT < 600; simT += dt {
		scen := live.eng.State()
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(live.model.State(), scen, dt)
		rec.Record(simT, in)
		live.model.Step(in, dt)
		live.eng.Step(live.model.State(), dt)
	}
	liveFinal = live.eng.State()
	if liveFinal.Phase != fom.PhaseComplete {
		t.Fatalf("live run did not complete: %v", liveFinal.Phase)
	}

	// --- Serialize and reload. ---
	var buf bytes.Buffer
	if err := Write(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty recorded trace")
	}
	t.Logf("recorded %d control samples over %.1f s", tr.Len(), tr.Duration())

	// --- Replay into a fresh world. ---
	replay := newExamRig(t)
	var replayFinal fom.ScenarioState
	for simT := 0.0; simT < 600; simT += dt {
		scen := replay.eng.State()
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := tr.At(simT)
		replay.model.Step(in, dt)
		replay.eng.Step(replay.model.State(), dt)
	}
	replayFinal = replay.eng.State()

	if replayFinal.Phase != liveFinal.Phase {
		t.Errorf("replay phase = %v, live = %v", replayFinal.Phase, liveFinal.Phase)
	}
	if replayFinal.Score != liveFinal.Score {
		t.Errorf("replay score = %v, live = %v", replayFinal.Score, liveFinal.Score)
	}
	if replayFinal.Collisions != liveFinal.Collisions {
		t.Errorf("replay collisions = %v, live = %v", replayFinal.Collisions, liveFinal.Collisions)
	}
	// The crane must end in the same place too, not just the same score.
	liveState := live.model.State()
	replayState := replay.model.State()
	if liveState.Position.Dist(replayState.Position) > 1e-6 {
		t.Errorf("replay position %v diverged from live %v",
			replayState.Position, liveState.Position)
	}
}
