package trace

import (
	"context"
	"errors"
	"testing"

	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
)

// The early-exit window must never change a verdict on the shipped
// library: with and without a stall budget, every scenario completes
// with the identical terminal state. (The generated-corpus half of this
// equivalence sweep lives in gen's oracle tests — gen imports trace, so
// the corpus cannot be flown from here.)
func TestStallBudgetVerdictEquivalenceLibrary(t *testing.T) {
	for _, spec := range scenario.Library() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			full, errFull := (&Runner{}).RunSkill(context.Background(), spec, 900, SkillProfile{})
			early, errEarly := (&Runner{StallBudget: DefaultStallBudget}).RunSkill(context.Background(), spec, 900, SkillProfile{})
			if (errFull == nil) != (errEarly == nil) {
				t.Fatalf("verdict changed: full err=%v, early err=%v", errFull, errEarly)
			}
			if full.Passed != early.Passed || full.State.Phase != early.State.Phase ||
				full.State.Score != early.State.Score || full.SimTime != early.SimTime {
				t.Fatalf("terminal state changed:\nfull  %+v @ %.2f\nearly %+v @ %.2f",
					full.State, full.SimTime, early.State, early.SimTime)
			}
		})
	}
}

// The stall budget is calibrated against the slowest supported trainee:
// the novice preset must clear every library scenario without the
// early-exit ever firing, with the measured worst inter-progress gap
// comfortably inside the budget. This test backs the ~70 s calibration
// claim in DefaultStallBudget's doc.
func TestStallBudgetClearsNoviceLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("novice library sweep in -short")
	}
	novice := SkillNovice()
	worst := 0.0
	for _, spec := range scenario.Library() {
		gap, err := maxProgressGap(t, spec, novice)
		if err != nil {
			t.Fatalf("%s: novice run: %v", spec.Name, err)
		}
		t.Logf("%s: worst novice progress gap %.1f sim-s", spec.Name, gap)
		if gap > worst {
			worst = gap
		}
	}
	if worst >= DefaultStallBudget {
		t.Fatalf("novice worst progress gap %.1f sim-s >= stall budget %.0f — budget would veto a legitimate trainee pace", worst, DefaultStallBudget)
	}
	if worst > 100 {
		t.Errorf("novice worst progress gap %.1f sim-s drifted far from the documented ~70 s calibration — update DefaultStallBudget's doc", worst)
	}
}

// maxProgressGap flies a scenario with the Runner loop's structure and
// records the longest stretch of simulated seconds with no phase-cursor
// advance, sampled at the same once-per-sim-second cadence the stall
// check uses.
func maxProgressGap(t *testing.T, spec scenario.Spec, skill SkillProfile) (float64, error) {
	t.Helper()
	ter := terrain.DefaultMap()
	decls := spec.CraneDecls()
	world := dynamics.NewWorld()
	models := make([]*dynamics.Model, len(decls))
	pilots := make([]*Autopilot, len(decls))
	var err error
	for c, d := range decls {
		models[c], err = dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, c)
		if err != nil {
			return 0, err
		}
		pilots[c] = ForCrane(spec, c)
		pilots[c].SetSkill(skill)
	}
	spec.Install(ter, models...)
	eng, err := scenario.NewEngineSpec(spec, crane.DefaultSpec())
	if err != nil {
		return 0, err
	}
	eng.SetLiveStatus(false)
	eng.Start()

	const dt = 1.0 / 60
	states := make([]fom.CraneState, len(decls))
	for c, m := range models {
		states[c] = m.State()
	}
	progress, progressAt, worst := eng.Progress(), 0.0, 0.0
	steps := 0
	for simTime := 0.0; simTime < 900; simTime += dt {
		if steps%60 == 0 {
			if p := eng.Progress(); p != progress {
				progress, progressAt = p, simTime
			} else if gap := simTime - progressAt; gap > worst {
				worst = gap
			}
		}
		steps++
		if p := eng.Phase(); p == fom.PhaseComplete || p == fom.PhaseFailed {
			return worst, nil
		}
		for c, m := range models {
			in := pilots[c].Control(states[c], eng.StateFor(c), dt)
			in.CraneID = int64(c)
			m.Step(in, dt)
			states[c] = m.State()
		}
		eng.StepAll(states, dt)
	}
	return worst, errors.New("scenario incomplete at 900 sim-seconds")
}

// A genuinely hopeless run — a work target dragged outside the crane's
// reach band — must be aborted by the stall window, with ErrStalled
// satisfying errors.Is(err, ErrIncomplete) so verdict mapping treats it
// as a plain failed candidate.
func TestStallBudgetAbortsHopelessRun(t *testing.T) {
	spec := scenario.Classic()
	moved := false
	for i := range spec.Phases {
		if spec.Phases[i].Kind == scenario.PhasePlace {
			spec.Phases[i].Target = spec.Phases[i].Target.Add(mathx.V3(40, 0, 0))
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("classic spec has no place phase to sabotage")
	}

	res, err := (&Runner{StallBudget: DefaultStallBudget}).RunSkill(context.Background(), spec, 900, SkillProfile{})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	if !errors.Is(err, ErrIncomplete) {
		t.Fatal("ErrStalled must wrap ErrIncomplete for verdict mapping")
	}
	if res.SimTime > DefaultStallBudget*2 {
		t.Fatalf("early exit fired at %.0f sim-s — not early against a 900 s budget", res.SimTime)
	}

	// And the oracle maps the stall to a clean false verdict, not a fault.
	_, ok, err := Completable(context.Background(), spec, 900)
	if err != nil {
		t.Fatalf("Completable returned a fault for a stalled run: %v", err)
	}
	if ok {
		t.Fatal("Completable certified an unreachable target")
	}
}

// A Runner must be reusable across runs of different crane counts — the
// whole point of the scratch — without state bleeding between runs.
func TestRunnerReuseAcrossRuns(t *testing.T) {
	r := NewRunner()
	lib := scenario.Library()
	for pass := 0; pass < 2; pass++ {
		for _, spec := range lib {
			res, err := r.RunSkill(context.Background(), spec, 900, SkillProfile{})
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, spec.Name, err)
			}
			if !res.Passed {
				t.Fatalf("pass %d %s: not passed (%+v)", pass, spec.Name, res.State)
			}
		}
	}
}
