package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// SkillProfile parameterizes how sloppily the synthetic trainee flies.
// The zero value is the expert: no lag, no overshoot, no widened dead
// band — bit-identical to the classic autopilot, so existing golden
// scores cannot drift. Sweeping a skill × scenario matrix through the
// batch layers turns the near-perfect controller into a realistic score
// distribution.
type SkillProfile struct {
	// Name labels the profile in reports ("" reads as "expert").
	Name string
	// ReactionLag is the trainee's response time constant in seconds:
	// the continuous control axes chase the controller's commands
	// through a first-order filter instead of applying them instantly.
	// 0 disables the filter.
	ReactionLag float64
	// Overshoot scales the proportional control gains: 0.3 commands 30%
	// harder than needed, so the boom hunts around every target the way
	// an over-eager trainee does.
	Overshoot float64
	// SlackBand widens the radial stand-off the controller tolerates
	// before correcting (meters): a sloppy operator is satisfied hovering
	// farther from the mark, costing time and precision.
	SlackBand float64

	// Jitter is the per-run spread of the profile: with Jitter > 0,
	// Seeded scales each of ReactionLag/Overshoot/SlackBand by an
	// independent deterministic factor in [1-Jitter, 1+Jitter] drawn from
	// the run's seed, so a sweep's score distribution widens without
	// losing reproducibility. 0 (the default) disables jitter — presets
	// stay bit-identical run to run.
	Jitter float64
}

// IsZero reports whether the profile is the expert zero value.
func (p SkillProfile) IsZero() bool {
	return p.ReactionLag == 0 && p.Overshoot == 0 && p.SlackBand == 0
}

// Seeded materializes the per-run profile for one seed: each axis of
// sloppiness is scaled by its own factor in [1-Jitter, 1+Jitter], drawn
// from a deterministic stream over the seed, and the returned profile has
// Jitter consumed (0) so seeding is idempotent. With Jitter == 0 the
// profile is returned unchanged — the zero-jitter path stays bit-identical
// to the classic presets, which is what keeps golden scores stable.
func (p SkillProfile) Seeded(seed int64) SkillProfile {
	if p.Jitter == 0 {
		return p
	}
	rng := rand.New(rand.NewSource(seed ^ 0x536b696c6c4a69)) // "SkillJi", decorrelates from other seed users
	factor := func() float64 { return 1 + p.Jitter*(2*rng.Float64()-1) }
	q := p
	q.ReactionLag *= factor()
	q.Overshoot *= factor()
	q.SlackBand *= factor()
	q.Jitter = 0
	return q
}

// SkillExpert is the classic flawless controller (the zero profile).
func SkillExpert() SkillProfile { return SkillProfile{Name: "expert"} }

// SkillIntermediate reacts in about a third of a second and pushes a
// quarter too hard — completes every shipped scenario, but slower and
// with the occasional swing penalty.
func SkillIntermediate() SkillProfile {
	return SkillProfile{Name: "intermediate", ReactionLag: 0.3, Overshoot: 0.3, SlackBand: 0.35}
}

// SkillNovice is the first-week trainee: slow hands, heavy overshoot,
// content to hover well off the mark.
func SkillNovice() SkillProfile {
	return SkillProfile{Name: "novice", ReactionLag: 0.5, Overshoot: 0.5, SlackBand: 0.7}
}

// skillPresets maps preset names to constructors, for CLI flags.
var skillPresets = map[string]func() SkillProfile{
	"expert":       SkillExpert,
	"intermediate": SkillIntermediate,
	"novice":       SkillNovice,
}

// SkillByName resolves a preset name ("expert", "intermediate",
// "novice"); the empty string is the expert.
func SkillByName(name string) (SkillProfile, error) {
	if name == "" {
		return SkillExpert(), nil
	}
	if mk, ok := skillPresets[name]; ok {
		return mk(), nil
	}
	return SkillProfile{}, fmt.Errorf("trace: unknown skill %q (have %v)", name, SkillNames())
}

// SkillNames lists the preset names, sorted.
func SkillNames() []string {
	names := make([]string, 0, len(skillPresets))
	for n := range skillPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// skillState is the filter memory of the reaction-lag model (the axes
// start from rest).
type skillState struct {
	axes [7]float64
}

// apply degrades the controller's crisp input according to the profile:
// proportional axes are overdriven by the overshoot gain, then every
// continuous axis chases its command through the reaction-lag filter.
// Discrete controls (ignition, gear, latch) pass through — even a novice
// flips a switch all the way.
func (p SkillProfile) apply(in fom.ControlInput, dt float64, st *skillState) fom.ControlInput {
	if p.IsZero() {
		return in
	}
	gain := 1 + p.Overshoot
	cmd := [7]float64{
		mathx.Clamp(in.Steering*gain, -1, 1),
		mathx.Clamp(in.Throttle*gain, 0, 1),
		in.Brake,
		mathx.Clamp(in.BoomJoyX*gain, -1, 1),
		mathx.Clamp(in.BoomJoyY*gain, -1, 1),
		mathx.Clamp(in.HoistJoyX*gain, -1, 1),
		mathx.Clamp(in.HoistJoyY*gain, -1, 1),
	}
	if p.ReactionLag > 0 {
		blend := mathx.Clamp(dt/p.ReactionLag, 0, 1)
		for i := range cmd {
			st.axes[i] += (cmd[i] - st.axes[i]) * blend
		}
		cmd = st.axes
	}
	in.Steering = cmd[0]
	in.Throttle = cmd[1]
	in.Brake = cmd[2]
	in.BoomJoyX = cmd[3]
	in.BoomJoyY = cmd[4]
	in.HoistJoyX = cmd[5]
	in.HoistJoyY = cmd[6]
	return in
}
