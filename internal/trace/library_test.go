package trace

import (
	"testing"

	"codsim/internal/fom"
	"codsim/internal/scenario"
)

// TestLibraryScenariosComplete is the library's acceptance gate: every
// shipped scenario must validate, and the generalized autopilot must
// complete each one headless with a passing score and no bar strikes.
func TestLibraryScenariosComplete(t *testing.T) {
	lib := scenario.Library()
	if len(lib) < 5 {
		t.Fatalf("library ships %d scenarios, want >= 5", len(lib))
	}
	seen := make(map[string]bool, len(lib))
	for _, spec := range lib {
		spec := spec
		if seen[spec.Name] {
			t.Fatalf("duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			if err := spec.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			res, err := Run(spec, 900)
			if err != nil {
				t.Fatal(err)
			}
			if res.State.Phase != fom.PhaseComplete {
				t.Fatalf("phase=%v score=%.1f wp=%d idx=%d msg=%q after %.0f s",
					res.State.Phase, res.State.Score, res.State.Waypoint,
					res.State.PhaseIndex, res.State.Message, res.SimTime)
			}
			if res.State.Score < spec.Score.PassMark {
				t.Errorf("score %.1f below pass mark %.1f", res.State.Score, spec.Score.PassMark)
			}
			if res.State.Collisions != 0 {
				t.Errorf("autopilot struck %d bars (carries above them)", res.State.Collisions)
			}
			t.Logf("%s: score %.1f in %.1f sim-seconds", spec.Title, res.State.Score, res.SimTime)
		})
	}
}

// TestAutopilotClampsForeignPhaseIndex feeds telemetry whose PhaseIndex
// lies outside the autopilot's own graph — a mismatched or older spec
// revision on the wire — and expects a controlled input, not a panic.
func TestAutopilotClampsForeignPhaseIndex(t *testing.T) {
	ap := New(scenario.Classic())
	scen := fom.ScenarioState{Phase: fom.PhaseLifting, PhaseIndex: 99}
	in := ap.Control(fom.CraneState{}, scen, 0.1)
	if !in.Ignition {
		t.Error("clamped control lost ignition")
	}
}

// TestAutopilotFallsBackToCoarsePhase feeds telemetry without a phase
// index — an older scenario LP on the wire — and expects the controller to
// act on the coarse phase instead of being stuck in the graph's entry node.
func TestAutopilotFallsBackToCoarsePhase(t *testing.T) {
	ap := New(scenario.Classic())
	scen := fom.ScenarioState{Phase: fom.PhaseLifting, PhaseIndex: fom.PhaseIndexUnknown}
	in := ap.Control(fom.CraneState{}, scen, 0.1)
	if in.Brake != 1 || in.Gear != 0 {
		t.Errorf("unknown-index lifting telemetry did not park the carrier: %+v", in)
	}
	if in.Throttle != 0 {
		t.Error("autopilot kept driving on lifting telemetry")
	}
}

// TestByName covers library lookup.
func TestByName(t *testing.T) {
	s, err := scenario.ByName("classic-exam")
	if err != nil || s.Name != "classic-exam" {
		t.Fatalf("ByName(classic-exam) = %v, %v", s.Name, err)
	}
	if _, err := scenario.ByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

// TestNightPrecisionGraphShape pins the multi-node phase graph: the night
// scenario lifts the same cargo twice and places it twice, proving the
// engine and autopilot handle graphs beyond the linear exam.
func TestNightPrecisionGraphShape(t *testing.T) {
	spec := scenario.NightPrecision()
	var lifts, places int
	for _, ps := range spec.Phases {
		switch ps.Kind {
		case scenario.PhaseLift:
			lifts++
		case scenario.PhasePlace:
			places++
		}
	}
	if lifts != 2 || places != 2 {
		t.Fatalf("lifts=%d places=%d, want 2/2", lifts, places)
	}
}
