// Package trace supplies the simulator's operator inputs: recorded control
// traces that can be replayed deterministically, and a closed-loop
// Autopilot that stands in for the human trainee — it drives the carrier to
// the test ground, works the boom through the licensing trajectory of
// Fig. 9, and sets the cargo back down, providing a repeatable workload for
// the scoring and performance experiments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"codsim/internal/fom"
)

// Sample is one timestamped control frame.
type Sample struct {
	T  float64 // seconds since trace start
	In fom.ControlInput
}

// Trace is a time-ordered control recording.
type Trace struct {
	samples []Sample
}

// NewTrace builds a trace from samples (sorted by time; input is copied).
func NewTrace(samples []Sample) *Trace {
	cp := append([]Sample(nil), samples...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	return &Trace{samples: cp}
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.samples) }

// Duration returns the time of the last sample.
func (tr *Trace) Duration() float64 {
	if len(tr.samples) == 0 {
		return 0
	}
	return tr.samples[len(tr.samples)-1].T
}

// At returns the control frame active at time t (zero-order hold: the last
// sample at or before t; zero input before the first sample).
func (tr *Trace) At(t float64) fom.ControlInput {
	idx := sort.Search(len(tr.samples), func(i int) bool { return tr.samples[i].T > t })
	if idx == 0 {
		return fom.ControlInput{}
	}
	return tr.samples[idx-1].In
}

// Recorder captures control frames into a trace.
type Recorder struct {
	samples []Sample
	last    fom.ControlInput
	started bool
}

// Record appends a frame; consecutive identical frames are coalesced so
// long holds cost one sample.
func (r *Recorder) Record(t float64, in fom.ControlInput) {
	if r.started && in == r.last {
		return
	}
	r.samples = append(r.samples, Sample{T: t, In: in})
	r.last = in
	r.started = true
}

// Trace returns the recording.
func (r *Recorder) Trace() *Trace { return NewTrace(r.samples) }

// Write serializes a trace as one whitespace-delimited line per sample:
//
//	t steering throttle brake bjx bjy hjx hjy ignition gear latch
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, s := range tr.samples {
		_, err := fmt.Fprintf(bw, "%g %g %g %g %g %g %g %g %d %d %d\n",
			s.T, s.In.Steering, s.In.Throttle, s.In.Brake,
			s.In.BoomJoyX, s.In.BoomJoyY, s.In.HoistJoyX, s.In.HoistJoyY,
			b2i(s.In.Ignition), s.In.Gear, b2i(s.In.HookLatch))
		if err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 11 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 11", line, len(f))
		}
		var vals [8]float64
		for i := 0; i < 8; i++ {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		ign, err := strconv.Atoi(f[8])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d ignition: %w", line, err)
		}
		gear, err := strconv.ParseUint(f[9], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d gear: %w", line, err)
		}
		latch, err := strconv.Atoi(f[10])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d latch: %w", line, err)
		}
		samples = append(samples, Sample{
			T: vals[0],
			In: fom.ControlInput{
				Steering: vals[1], Throttle: vals[2], Brake: vals[3],
				BoomJoyX: vals[4], BoomJoyY: vals[5],
				HoistJoyX: vals[6], HoistJoyY: vals[7],
				Ignition: ign != 0, Gear: uint32(gear), HookLatch: latch != 0,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return NewTrace(samples), nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
