package trace

import (
	"bytes"
	"strings"
	"testing"

	"codsim/internal/fom"
)

func TestTraceAtZeroOrderHold(t *testing.T) {
	tr := NewTrace([]Sample{
		{T: 1, In: fom.ControlInput{Throttle: 0.5}},
		{T: 3, In: fom.ControlInput{Throttle: 1, Gear: 1}},
	})
	if got := tr.At(0.5); got != (fom.ControlInput{}) {
		t.Errorf("At(0.5) = %+v, want zero", got)
	}
	if got := tr.At(1); got.Throttle != 0.5 {
		t.Errorf("At(1) = %+v", got)
	}
	if got := tr.At(2.9); got.Throttle != 0.5 {
		t.Errorf("At(2.9) = %+v", got)
	}
	if got := tr.At(3); got.Throttle != 1 || got.Gear != 1 {
		t.Errorf("At(3) = %+v", got)
	}
	if got := tr.At(99); got.Throttle != 1 {
		t.Errorf("At(99) = %+v", got)
	}
	if tr.Duration() != 3 {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestTraceSortsSamples(t *testing.T) {
	tr := NewTrace([]Sample{
		{T: 5, In: fom.ControlInput{Gear: 2}},
		{T: 1, In: fom.ControlInput{Gear: 1}},
	})
	if got := tr.At(2); got.Gear != 1 {
		t.Errorf("At(2) = %+v, want first sample", got)
	}
}

func TestRecorderCoalesces(t *testing.T) {
	var r Recorder
	in := fom.ControlInput{Throttle: 0.4}
	for i := 0; i < 100; i++ {
		r.Record(float64(i)*0.1, in)
	}
	in.Throttle = 0.8
	r.Record(10.0, in)
	tr := r.Trace()
	if tr.Len() != 2 {
		t.Errorf("samples = %d, want 2 (coalesced)", tr.Len())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := NewTrace([]Sample{
		{T: 0, In: fom.ControlInput{Ignition: true}},
		{T: 1.5, In: fom.ControlInput{Ignition: true, Gear: 1, Throttle: 0.75, Steering: -0.3}},
		{T: 4, In: fom.ControlInput{Ignition: true, BoomJoyX: 0.5, HoistJoyY: -1, HookLatch: true}},
	})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for _, probe := range []float64{0, 1.5, 2, 4, 10} {
		if got.At(probe) != orig.At(probe) {
			t.Errorf("At(%v): %+v vs %+v", probe, got.At(probe), orig.At(probe))
		}
	}
}

func TestReadToleratesCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n0 0 0.5 0 0 0 0 0 1 1 0\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.At(0).Throttle != 0.5 {
		t.Errorf("parsed = %+v", tr.At(0))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1 2 3",                     // too few fields
		"x 0 0 0 0 0 0 0 0 0 0",     // bad float
		"0 0 0 0 0 0 0 0 y 0 0",     // bad ignition
		"0 0 0 0 0 0 0 0 0 -1 0",    // bad gear
		"0 0 0 0 0 0 0 0 0 0 blorp", // bad latch
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded", c)
		}
	}
}
