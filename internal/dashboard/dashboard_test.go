package dashboard

import (
	"math"
	"testing"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

func TestInstrumentClamping(t *testing.T) {
	i := &Instrument{Name: "x", Min: 0, Max: 10}
	i.Set(50)
	if i.Value() != 10 {
		t.Errorf("Value = %v, want clamped 10", i.Value())
	}
	i.Set(-5)
	if i.Value() != 0 {
		t.Errorf("Value = %v, want clamped 0", i.Value())
	}
}

func TestInstrumentFault(t *testing.T) {
	i := &Instrument{Name: "x", Min: 0, Max: 100}
	i.Set(40)
	i.InjectFault(90)
	if !i.Faulted() || i.Value() != 90 {
		t.Errorf("faulted display = %v", i.Value())
	}
	if i.TrueValue() != 40 {
		t.Errorf("TrueValue = %v, want 40", i.TrueValue())
	}
	// Fault display clamps to range too.
	i.InjectFault(500)
	if i.Value() != 100 {
		t.Errorf("fault display = %v, want clamped", i.Value())
	}
	i.ClearFault()
	if i.Faulted() || i.Value() != 40 {
		t.Errorf("after clear: %v", i.Value())
	}
}

func TestPanelUpdateFromState(t *testing.T) {
	p := NewPanel()
	st := fom.CraneState{
		Speed:     5, // m/s → 18 km/h
		EngineRPM: 1500,
		EngineOn:  true,
		BoomLuff:  mathx.Rad(60),
		BoomLen:   15,
		CableLen:  7,
		CargoMass: 2500,
		Stability: 0.8,
	}
	p.UpdateFromState(st, 0.1)
	checks := map[string]float64{
		InstrSpeed:     18,
		InstrRPM:       1500,
		InstrBoomAngle: 60,
		InstrBoomLen:   15,
		InstrCableLen:  7,
		InstrLoad:      2500,
		InstrStability: 80,
	}
	for name, want := range checks {
		if got := p.Instrument(name).Value(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Reverse speed shows as positive.
	st.Speed = -3
	p.UpdateFromState(st, 0)
	if got := p.Instrument(InstrSpeed).Value(); math.Abs(got-10.8) > 1e-9 {
		t.Errorf("reverse speed display = %v", got)
	}
}

func TestFuelBurn(t *testing.T) {
	p := NewPanel()
	st := fom.CraneState{EngineOn: true, EngineRPM: 3000}
	before := p.Instrument(InstrFuel).Value()
	// One hour at full rpm burns 25 liters of 300.
	for i := 0; i < 3600; i++ {
		p.UpdateFromState(st, 1)
	}
	after := p.Instrument(InstrFuel).Value()
	wantDrop := 25.0 / 300 * 100
	if math.Abs((before-after)-wantDrop) > 0.5 {
		t.Errorf("fuel dropped %v%%, want ~%v%%", before-after, wantDrop)
	}
	// Engine off burns nothing.
	st.EngineOn = false
	mid := p.Instrument(InstrFuel).Value()
	p.UpdateFromState(st, 3600)
	if p.Instrument(InstrFuel).Value() != mid {
		t.Error("fuel burned with engine off")
	}
}

func TestPanelApplyCommands(t *testing.T) {
	p := NewPanel()
	if err := p.Apply(fom.InstructorCmd{Op: fom.OpInjectFault, Instrument: InstrRPM, Value: 2800}); err != nil {
		t.Fatal(err)
	}
	if got := p.Instrument(InstrRPM).Value(); got != 2800 {
		t.Errorf("faulted rpm = %v", got)
	}
	if err := p.Apply(fom.InstructorCmd{Op: fom.OpClearFault, Instrument: InstrRPM}); err != nil {
		t.Fatal(err)
	}
	if p.Instrument(InstrRPM).Faulted() {
		t.Error("fault not cleared")
	}
	if err := p.Apply(fom.InstructorCmd{Op: fom.OpInjectFault, Instrument: "warp-core"}); err == nil {
		t.Error("unknown instrument accepted")
	}
	if err := p.Apply(fom.InstructorCmd{Op: fom.InstructorOp(99)}); err == nil {
		t.Error("unknown op accepted")
	}
	// Scenario ops are ignored without error.
	if err := p.Apply(fom.InstructorCmd{Op: fom.OpStartScenario}); err != nil {
		t.Errorf("scenario op: %v", err)
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	p := NewPanel()
	a := p.Snapshot()
	b := p.Snapshot()
	if len(a) != 8 {
		t.Fatalf("gauges = %d, want 8", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("snapshot order unstable")
		}
	}
	// Faults are visible in the snapshot.
	p.Instrument(InstrFuel).InjectFault(0)
	for _, g := range p.Snapshot() {
		if g.Name == InstrFuel && !g.Faulted {
			t.Error("snapshot does not show fault")
		}
	}
}

func TestInputShapingDeadzone(t *testing.T) {
	s := DefaultShaping()
	raw := fom.ControlInput{Steering: 0.03, Throttle: 0.04, BoomJoyX: -0.05}
	out := s.Shape(raw)
	if out.Steering != 0 || out.Throttle != 0 || out.BoomJoyX != 0 {
		t.Errorf("deadzone leak: %+v", out)
	}
}

func TestInputShapingFullScale(t *testing.T) {
	s := DefaultShaping()
	out := s.Shape(fom.ControlInput{Steering: 1, Throttle: 1, Brake: 1, BoomJoyY: -1})
	if math.Abs(out.Steering-1) > 1e-9 || math.Abs(out.Throttle-1) > 1e-9 {
		t.Errorf("full scale lost: %+v", out)
	}
	if math.Abs(out.BoomJoyY+1) > 1e-9 {
		t.Errorf("negative full scale lost: %v", out.BoomJoyY)
	}
	// Out-of-range inputs clamp.
	out = s.Shape(fom.ControlInput{Steering: 5, Brake: -2})
	if out.Steering > 1 || out.Brake != 0 {
		t.Errorf("clamping failed: %+v", out)
	}
}

func TestInputShapingMonotone(t *testing.T) {
	s := DefaultShaping()
	prev := -1.0
	for v := -1.0; v <= 1.0; v += 0.01 {
		got := s.shapeAxis(v)
		if got < prev-1e-12 {
			t.Fatalf("axis curve not monotone at %v", v)
		}
		prev = got
	}
	// Expo softens mid-scale response.
	linear := InputShaping{Deadzone: 0, Expo: 0}
	soft := InputShaping{Deadzone: 0, Expo: 0.8}
	if soft.shapeAxis(0.5) >= linear.shapeAxis(0.5) {
		t.Error("expo does not soften mid travel")
	}
}

func TestShapePreservesDiscreteControls(t *testing.T) {
	s := DefaultShaping()
	out := s.Shape(fom.ControlInput{Ignition: true, Gear: 2, HookLatch: true})
	if !out.Ignition || out.Gear != 2 || !out.HookLatch {
		t.Errorf("discrete controls mangled: %+v", out)
	}
}
