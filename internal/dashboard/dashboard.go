// Package dashboard implements the dashboard module of §3.2: the I/O
// device simulator behind the mockup's instruments. It samples the input
// devices (steering wheel, gas pedal, brake, and the two joysticks that
// control the derrick boom and the plumb cable), translates the signals
// into ControlInput messages for the other modules, and drives the meters
// and indicators — including the instructor's trouble-shooting fault
// injection, where clicking an instrument on the Dashboard window forces
// it to a bogus value (§3.3).
package dashboard

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"codsim/internal/fom"
	"codsim/internal/mathx"
)

// Instrument is one meter or indicator on the dashboard. Instruments are
// safe for concurrent use: the dashboard LP drives them from its tick loop
// while instructor commands and UI mirrors read them from other
// goroutines.
type Instrument struct {
	Name string
	Unit string
	Min  float64
	Max  float64

	mu       sync.Mutex
	value    float64
	faulted  bool
	faultVal float64
}

// Set drives the instrument from live data (clamped to its range).
func (i *Instrument) Set(v float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.value = mathx.Clamp(v, i.Min, i.Max)
}

// Value returns what the needle shows: the injected fault value when
// faulted, the live value otherwise.
func (i *Instrument) Value() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.faulted {
		return mathx.Clamp(i.faultVal, i.Min, i.Max)
	}
	return i.value
}

// TrueValue returns the live value regardless of faults.
func (i *Instrument) TrueValue() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.value
}

// Faulted reports whether a fault is injected.
func (i *Instrument) Faulted() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.faulted
}

// InjectFault forces the display to v until ClearFault.
func (i *Instrument) InjectFault(v float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faulted = true
	i.faultVal = v
}

// ClearFault restores live display.
func (i *Instrument) ClearFault() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faulted = false
}

// Standard instrument names.
const (
	InstrSpeed     = "speed"
	InstrRPM       = "rpm"
	InstrFuel      = "fuel"
	InstrBoomAngle = "boom-angle"
	InstrBoomLen   = "boom-length"
	InstrCableLen  = "cable-length"
	InstrLoad      = "load"
	InstrStability = "stability"
)

// Panel is the full instrument cluster. The instrument map is immutable
// after construction; per-instrument state and the fuel level carry their
// own locks, so the panel is safe for concurrent use.
type Panel struct {
	instruments map[string]*Instrument

	mu      sync.Mutex // guards fuel
	fuel    float64    // liters
	fuelCap float64
}

// NewPanel builds the standard cluster with a full fuel tank.
func NewPanel() *Panel {
	p := &Panel{
		instruments: make(map[string]*Instrument, 8),
		fuel:        300,
		fuelCap:     300,
	}
	add := func(name, unit string, min, max float64) {
		p.instruments[name] = &Instrument{Name: name, Unit: unit, Min: min, Max: max}
	}
	add(InstrSpeed, "km/h", 0, 80)
	add(InstrRPM, "rpm", 0, 3000)
	add(InstrFuel, "%", 0, 100)
	add(InstrBoomAngle, "deg", 0, 90)
	add(InstrBoomLen, "m", 0, 30)
	add(InstrCableLen, "m", 0, 30)
	add(InstrLoad, "kg", 0, 30000)
	add(InstrStability, "%", 0, 100)
	p.instruments[InstrFuel].Set(100)
	return p
}

// Instrument returns the named instrument, or nil.
func (p *Panel) Instrument(name string) *Instrument { return p.instruments[name] }

// Names returns the instrument names in stable order.
func (p *Panel) Names() []string {
	names := make([]string, 0, len(p.instruments))
	for n := range p.instruments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UpdateFromState drives the meters from the published crane state, and
// burns fuel with engine load over dt seconds.
func (p *Panel) UpdateFromState(st fom.CraneState, dt float64) {
	p.instruments[InstrSpeed].Set(math.Abs(st.Speed) * 3.6)
	p.instruments[InstrRPM].Set(st.EngineRPM)
	p.instruments[InstrBoomAngle].Set(mathx.Deg(st.BoomLuff))
	p.instruments[InstrBoomLen].Set(st.BoomLen)
	p.instruments[InstrCableLen].Set(st.CableLen)
	p.instruments[InstrLoad].Set(st.CargoMass)
	p.instruments[InstrStability].Set(st.Stability * 100)

	p.mu.Lock()
	if st.EngineOn && dt > 0 {
		// Idle burn plus load burn, liters/hour scaled to dt.
		lph := 3 + 22*(st.EngineRPM/3000)
		p.fuel = math.Max(0, p.fuel-lph*dt/3600)
	}
	fuelPct := p.fuel / p.fuelCap * 100
	p.mu.Unlock()
	p.instruments[InstrFuel].Set(fuelPct)
}

// Apply executes an instructor command against the panel. Unknown
// instruments are an error so typos surface in testing.
func (p *Panel) Apply(cmd fom.InstructorCmd) error {
	switch cmd.Op {
	case fom.OpInjectFault, fom.OpClearFault:
		inst, ok := p.instruments[cmd.Instrument]
		if !ok {
			return fmt.Errorf("dashboard: unknown instrument %q", cmd.Instrument)
		}
		if cmd.Op == fom.OpInjectFault {
			inst.InjectFault(cmd.Value)
		} else {
			inst.ClearFault()
		}
		return nil
	case fom.OpStartScenario, fom.OpResetScenario:
		return nil // scenario commands are not for the panel
	default:
		return fmt.Errorf("dashboard: unknown op %d", cmd.Op)
	}
}

// Gauge is a read-only snapshot of one instrument, consumed by the
// instructor's Dashboard window (the "pictorial duplication", Fig. 6).
type Gauge struct {
	Name    string
	Unit    string
	Value   float64
	Faulted bool
}

// Snapshot returns all gauges in stable order.
func (p *Panel) Snapshot() []Gauge {
	names := p.Names()
	out := make([]Gauge, 0, len(names))
	for _, n := range names {
		i := p.instruments[n]
		out = append(out, Gauge{Name: i.Name, Unit: i.Unit, Value: i.Value(), Faulted: i.Faulted()})
	}
	return out
}

// InputShaping calibrates the raw operator controls: a deadzone swallows
// mechanical slack around center and an exponential curve softens small
// deflections, as the real trainer's device driver did.
type InputShaping struct {
	Deadzone float64 // fraction of travel ignored around center [0, 0.5]
	Expo     float64 // 0 = linear, 1 = cubic response
}

// DefaultShaping returns the shipped calibration.
func DefaultShaping() InputShaping {
	return InputShaping{Deadzone: 0.06, Expo: 0.35}
}

// shapeAxis applies deadzone and expo to a [-1,1] axis.
func (s InputShaping) shapeAxis(v float64) float64 {
	v = mathx.Clamp(v, -1, 1)
	sign := 1.0
	if v < 0 {
		sign = -1
		v = -v
	}
	if v <= s.Deadzone {
		return 0
	}
	v = (v - s.Deadzone) / (1 - s.Deadzone)
	v = (1-s.Expo)*v + s.Expo*v*v*v
	return sign * v
}

// shapePedal applies the deadzone to a [0,1] pedal.
func (s InputShaping) shapePedal(v float64) float64 {
	v = mathx.Clamp(v, 0, 1)
	if v <= s.Deadzone {
		return 0
	}
	return (v - s.Deadzone) / (1 - s.Deadzone)
}

// Shape calibrates a full raw control frame.
func (s InputShaping) Shape(raw fom.ControlInput) fom.ControlInput {
	out := raw
	out.Steering = s.shapeAxis(raw.Steering)
	out.BoomJoyX = s.shapeAxis(raw.BoomJoyX)
	out.BoomJoyY = s.shapeAxis(raw.BoomJoyY)
	out.HoistJoyX = s.shapeAxis(raw.HoistJoyX)
	out.HoistJoyY = s.shapeAxis(raw.HoistJoyY)
	out.Throttle = s.shapePedal(raw.Throttle)
	out.Brake = s.shapePedal(raw.Brake)
	return out
}
