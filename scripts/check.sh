#!/bin/sh
# check.sh mirrors the CI workflow (.github/workflows/ci.yml) locally:
# formatting, vet, the codvet analyzer suite, and the full test suite.
# Run it from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== codvet (project invariants: determinism, policydecl, layering, ctxwait, errwrap, nopool) =="
go run ./cmd/codvet ./...

# staticcheck and govulncheck are external tools; CI installs them pinned
# (see ci.yml). Locally they gate when present and are skipped offline.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck: not installed, skipping (CI runs it pinned) =="
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck =="
    govulncheck ./...
else
    echo "== govulncheck: not installed, skipping (CI runs it pinned) =="
fi

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -bench . -benchtime 1x -run '^$' ./...

echo "== slow-subscriber smoke (MemLAN, 2 s stall: conflation + backpressure) =="
go test -run 'TestSlowSubscriberMemLANSmoke|TestReliableBackpressureStallsAndDrains|TestLatestValueStalledSubscriberConflates' -race -count=1 ./internal/cb

echo "== dist smoke (coordinator + workers, MemLAN) =="
go test -run 'TestCoordinatorWorkersMemLAN|TestRedispatchOnWorkerDeath|TestMemLANTandemSweep' -count=1 ./internal/dist

out=$(mktemp -d)
w1=; w2=
cleanup() {
    # || true throughout: under set -e a failed kill (process already
    # gone) must not abort the trap before the rest of the cleanup.
    [ -z "$w1" ] || kill "$w1" 2>/dev/null || true
    [ -z "$w2" ] || kill "$w2" 2>/dev/null || true
    rm -rf "$out" || true
}
trap cleanup EXIT

echo "== bench regression (allocs/op vs BENCH_baseline.json; CBRouting gates) =="
# 10x matches the baseline's recording conditions: at 1x the one-time
# channel-setup allocations drown the per-op signal.
go test -bench 'BenchmarkCB|BenchmarkChannelSetup' -benchtime 10x -run '^$' . >"$out/bench.txt"
go test -bench . -benchtime 10x -run '^$' ./internal/transport >>"$out/bench.txt"
# ObsCounter carries a 0-allocs/op ceiling: metric points must stay cheap
# enough to sit on delivery hot paths. 1000x for a steady-state reading.
go test -bench . -benchtime 1000x -run '^$' ./internal/obs >>"$out/bench.txt"
# The gated CBRouting ceilings need steady-state numbers: at 10x the
# channel-setup amortization still flickers allocs/op by ±3. benchdiff
# keeps the last line per benchmark, so this run overrides the 10x one.
go test -bench 'BenchmarkCBRouting' -benchtime 500x -run '^$' . >>"$out/bench.txt"
# Sustained throughput at 1000x: the frames/sec/core headline plus gated
# allocs/bytes ceilings on the pipelined publish→consume path.
go test -bench 'BenchmarkCBThroughput' -benchtime 1000x -run '^$' . >>"$out/bench.txt"
# The certification hot loop is gated at 0 allocs per 60 Hz step (20000x
# amortizes the per-run rig rebuilds); one full oracle dry-run stays
# under its setup ceiling at 20x.
go test -bench 'BenchmarkHeadlessRun' -benchtime 20000x -run '^$' . >>"$out/bench.txt"
go test -bench 'BenchmarkOracleCertify' -benchtime 20x -run '^$' . >>"$out/bench.txt"
go run ./cmd/benchdiff BENCH_baseline.json "$out/bench.txt"

echo "== batch smoke (headless sweep incl. multi-crane, JSONL report) =="
go build -o "$out/codbatch" ./cmd/codbatch
"$out/codbatch" -headless -strict -out "$out/results.jsonl" >"$out/report.txt"
tail -n 3 "$out/report.txt"

echo "== tandem-lift smoke (two cranes, headless + skill spread) =="
"$out/codbatch" -headless -strict -scenarios tandem-beam,twin-yard >"$out/tandem.txt"
"$out/codbatch" -headless -strict -skill novice -scenarios tandem-beam,twin-yard >>"$out/tandem.txt"
tail -n 2 "$out/tandem.txt"

echo "== campaign smoke (100 generated scenarios, oracle-certified, strict, verdict cache) =="
"$out/codbatch" -campaign 7:100 -headless -strict -campaign-cache "$out/verdicts.jsonl" >"$out/campaign.txt"
tail -n 3 "$out/campaign.txt"
"$out/codbatch" -campaign 7:100 -list >/dev/null
# Warm rerun: every verdict replays from the cache — zero live dry-runs.
"$out/codbatch" -campaign 7:100 -headless -strict -campaign-cache "$out/verdicts.jsonl" >"$out/campaign-warm.txt"
grep -q '0 live dry-runs' "$out/campaign-warm.txt" || {
    echo "campaign smoke: warm cache rerun still flew dry-runs" >&2
    grep 'verdict cache' "$out/campaign-warm.txt" >&2 || true
    exit 1
}

echo "== fuzz smoke (Spec JSON surface, 10 s per target) =="
go test -run '^$' -fuzz '^FuzzUnmarshalSpec$' -fuzztime 10s ./internal/scenario
go test -run '^$' -fuzz '^FuzzValidate$' -fuzztime 10s ./internal/scenario

echo "== dist CLI smoke (codbatch coordinator + 2 worker processes, UDPLAN loopback) =="
"$out/codbatch" -serve -lan 127.0.0.1:47901 -name smoke1 -headless -obs 127.0.0.1:47911 >"$out/w1.log" 2>&1 &
w1=$!
"$out/codbatch" -serve -lan 127.0.0.1:47901 -name smoke2 -headless >"$out/w2.log" 2>&1 &
w2=$!
# timeout: if a worker failed at startup (port clash with a stray run),
# the coordinator would otherwise wait for its heartbeat forever.
timeout 120 "$out/codbatch" -coordinator smoke1,smoke2 -lan 127.0.0.1:47901 \
    -scenarios classic-exam,blind-lift,tandem-beam,twin-yard -repeat 2 -headless -strict \
    -out "$out/dist-results.jsonl" >"$out/dist-report.txt"
tail -n 3 "$out/dist-report.txt"

echo "== obs smoke (telemetry plane on worker smoke1: /metrics + /healthz) =="
curl -fsS http://127.0.0.1:47911/healthz | grep -q '^ok'
# One post-sweep scrape suffices: collect-on-scrape refreshes the gauges,
# and the codsim_cb_sub_* lifetime totals survive the sweep's channel
# teardown (the per-channel codsim_cb_channel_* series die with their
# channels, so the smoke doesn't race the sweep to see them).
curl -fsS http://127.0.0.1:47911/metrics >"$out/metrics.txt"
for series in 'codsim_dist_jobs{role="worker"' codsim_job_phase_seconds_bucket \
    codsim_cb_stat codsim_cb_sub_frames_total codsim_obs_samples_total; do
    grep -qF "$series" "$out/metrics.txt" || {
        echo "obs smoke: series $series missing from /metrics" >&2
        exit 1
    }
done

echo "OK"
