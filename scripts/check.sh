#!/bin/sh
# check.sh mirrors the CI workflow (.github/workflows/ci.yml) locally:
# formatting, vet, and the full test suite. Run it from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -bench . -benchtime 1x -run '^$' ./...

echo "OK"
