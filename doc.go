// Package codsim reproduces "Experience of Building A High-Fidelity Mobile
// Crane Simulator with Cluster of Desktop Computers" (Huang, Bai, Tai, Gau
// — ICDCS 2001): a fully distributed interactive visual simulator built
// from commodity desktop computers connected by a transparent
// publish/subscribe layer, the Communication Backbone (CB).
//
// The supported programming surface is the cod package: a typed,
// context-aware SDK over the backbone. Modules create a cod.Node (one per
// "computer"), register plain Go structs as published or subscribed object
// classes with cod.Publish[T] and cod.Subscribe[T], and group nodes into a
// cod.Federation that shares a LAN and tears down on one Close. Start with
// examples/quickstart, then cmd/codnode for real multi-process sockets.
//
// The implementation lives under internal/, which is no longer a
// supported entry point:
//
//   - cb, lp, fom, wire, transport, timesync — the COD runtime: the CB's
//     virtual channels, the HLA-style initialization protocol, the LAN
//     substrates (simulated and real sockets), and conservative time sync;
//   - render, displaysync — the software graphics pipeline and the
//     synchronization server behind the paper's 16 fps surround view;
//   - dynamics, collision, terrain, crane — the crane physics: carrier,
//     boom, hook pendulum, multi-level collision detection, terrain
//     following, and the safety envelope;
//   - motion, audio, dashboard, instructor, scenario, trace — the other
//     simulator modules of Fig. 3 plus the autopilot trainee;
//   - sim — the full eight-computer federation and the parallel batch
//     runner;
//   - dist — the distributed batch layer: a coordinator shards scenario
//     jobs over worker hosts through typed cod channels (dist.Job /
//     dist.Claim / dist.Grant / dist.Result / dist.Ack /
//     dist.Heartbeat), with re-dispatch on worker death, acknowledged
//     at-least-once results, and JSON-lines score analytics.
//
// # Scenarios
//
// Workloads are data: a scenario.Spec declares site geometry, a cargo
// set, a phase graph (drive / lift / traverse / place nodes the engine
// interprets), a deduction schedule, wind, and visibility. Eight specs
// ship in the library (classic and advanced exams, blind lift, heavy
// derate, windy lift, night precision placement, tandem beam lift,
// staggered two-crane yard), and specs serialize to JSON
// (scenario.LoadSpecDir reads a directory of them); sim.Config.Scenario
// loads any of them — or your own — into the full federation, trace.Run
// executes one headless, and sim.RunBatch runs N federations
// concurrently. cmd/codbatch is the CLI, locally or sharded across
// worker hosts with -serve/-coordinator, persisting per-run JSON-lines
// records with percentile, regression and trend reports (-trend dir/).
//
// Beyond the hand-built library, scenario/gen generates scenarios
// procedurally: gen.Generate samples seeded, deterministic Specs
// (randomized courses, cargo sets, tandem beams, wind and night
// regimes, one- or two-crane phase graphs) and a completability oracle
// — a static reachability check plus an expert-autopilot dry-run
// (trace.Completable) — certifies every emitted spec before it is
// dispatched. codbatch -campaign seed:count streams a certified
// campaign through the dist coordinator in windowed chunks
// (Coordinator.RunStream over a dist.JobSource), reproducible and
// diffable per seed+params; rejected candidates are resampled from the
// same seed stream and tallied, never dispatched.
//
// # Multi-crane federation and tandem lifts
//
// A Spec may declare several carriers (Spec.Cranes); each phase node
// carries a crane index and every crane walks its own sub-graph of the
// phase list with an independent cursor. A cargo declaring Hooks: 2 is a
// tandem load: the dynamics keep it grounded until two rigs latch it
// (both rigs share one dynamics.World), the scenario engine's tandem
// gate holds the first crane until its partner arrives, and the carried
// load then splits evenly between the cables. The federation scales with
// the declaration — sim.New spawns one dynamics, motion and autopilot
// participant per crane, all publishing on the same FOM classes (the
// paper's multiple-publishers-per-object-class rule) and demultiplexed
// by the CraneID attribute; absent on the wire means crane 0, so
// pre-multi-crane peers and recordings keep decoding. The autopilot
// takes a trace.SkillProfile (expert / intermediate / novice presets)
// parameterizing reaction lag, overshoot and slack, so batch sweeps
// yield realistic score distributions.
//
// The benchmarks in bench_test.go regenerate the paper's quantitative
// artifacts; cmd/experiments prints the full tables recorded in
// EXPERIMENTS.md, and BENCH_baseline.json records a reference run.
package codsim
