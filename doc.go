// Package codsim reproduces "Experience of Building A High-Fidelity Mobile
// Crane Simulator with Cluster of Desktop Computers" (Huang, Bai, Tai, Gau
// — ICDCS 2001): a fully distributed interactive visual simulator built
// from commodity desktop computers connected by a transparent
// publish/subscribe layer, the Communication Backbone (CB).
//
// The implementation lives under internal/:
//
//   - cb, lp, fom, wire, transport, timesync — the COD runtime: the CB's
//     virtual channels, the HLA-style initialization protocol, the LAN
//     substrates (simulated and real sockets), and conservative time sync;
//   - render, displaysync — the software graphics pipeline and the
//     synchronization server behind the paper's 16 fps surround view;
//   - dynamics, collision, terrain, crane — the crane physics: carrier,
//     boom, hook pendulum, multi-level collision detection, terrain
//     following, and the safety envelope;
//   - motion, audio, dashboard, instructor, scenario, trace — the other
//     simulator modules of Fig. 3 plus the autopilot trainee;
//   - sim — the full eight-computer federation.
//
// The benchmarks in bench_test.go regenerate the paper's quantitative
// artifacts; cmd/experiments prints the full tables recorded in
// EXPERIMENTS.md. Start with examples/quickstart.
package codsim
