// Command benchdiff compares a `go test -bench` run against the repo's
// BENCH_baseline.json and reports allocation regressions. ns/op on shared
// CI runners is noise, so timing is never judged; allocs/op is the stable
// signal. Most benchmarks are compared warn-only, but entries carrying a
// "max_allocs_per_op" ceiling in the baseline — the BenchmarkCBRouting*
// hot paths — are gating: a run above the ceiling exits nonzero, which
// turns "the CB hot path gained three allocations" from an archaeology
// project into a failed CI step.
//
//	go test -bench . -benchtime 1x -run '^$' . > bench.txt
//	go run ./cmd/benchdiff BENCH_baseline.json bench.txt
//
// Only benchmarks present in both inputs are compared; allocs/op is the
// stable signal, bytes/op is shown for context.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors BENCH_baseline.json.
type baseline struct {
	Description string           `json:"description"`
	Benchmarks  []baselineResult `json:"benchmarks"`
}

type baselineResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MaxAllocs   int64   `json:"max_allocs_per_op"`
	HasAllocs   bool    `json:"-"`
	HasMax      bool    `json:"-"`
}

// UnmarshalJSON remembers whether allocs_per_op and max_allocs_per_op
// were present: entries recorded without -benchmem report nothing to
// compare against, and only entries with an explicit ceiling gate.
func (r *baselineResult) UnmarshalJSON(b []byte) error {
	type plain baselineResult
	if err := json.Unmarshal(b, (*plain)(r)); err != nil {
		return err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return err
	}
	_, r.HasAllocs = probe["allocs_per_op"]
	_, r.HasMax = probe["max_allocs_per_op"]
	return nil
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkCBRoutingRemote-4  10  13658 ns/op  3212 B/op  45 allocs/op".
// The name is kept verbatim: a trailing "-N" is ambiguous between the
// GOMAXPROCS suffix (absent at GOMAXPROCS=1, the baseline's recording
// condition) and a sub-benchmark case like "/polys-800", so suffix
// stripping happens at lookup time (see lookup), never at parse time.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ fps)?(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

type runResult struct {
	ns     float64
	bytes  float64
	allocs int64
	hasAll bool
}

func parseRun(path string) (map[string]runResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]runResult)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := runResult{}
		r.ns, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.bytes, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			r.allocs, _ = strconv.ParseInt(m[4], 10, 64)
			r.hasAll = true
		}
		out[m[1]] = r
	}
	return out, sc.Err()
}

// procSuffix matches the "-GOMAXPROCS" tail go test appends to benchmark
// names when GOMAXPROCS > 1.
var procSuffix = regexp.MustCompile(`-\d+$`)

// lookup resolves a baseline benchmark name in a run: exact first (the
// GOMAXPROCS=1 form the baseline records), then with one "-N" proc
// suffix appended — the only stripping that is unambiguous, because the
// baseline name anchors where the real name ends.
func lookup(run map[string]runResult, name string) (runResult, bool) {
	if r, ok := run[name]; ok {
		return r, true
	}
	for k, r := range run {
		if strings.HasPrefix(k, name+"-") && procSuffix.MatchString(k) && procSuffix.ReplaceAllString(k, "") == name {
			return r, true
		}
	}
	return runResult{}, false
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff BENCH_baseline.json bench-output.txt")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: baseline:", err)
		os.Exit(2)
	}
	run, err := parseRun(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	warned := 0
	failed := 0
	compared := 0
	fmt.Printf("%-40s %14s %14s  %s\n", "BENCHMARK", "ALLOCS/OP", "BASELINE", "VERDICT")
	for _, b := range base.Benchmarks {
		cur, ok := lookup(run, b.Name)
		if !ok || !b.HasAllocs || !cur.hasAll {
			if b.HasMax {
				// A gated benchmark that silently vanishes from the run
				// would ungate itself; keep the hole visible in the log.
				fmt.Printf("%-40s %14s %14d  gated benchmark missing from run\n", b.Name, "-", b.AllocsPerOp)
			}
			continue
		}
		compared++
		verdict := "ok"
		switch {
		case b.HasMax && cur.allocs > b.MaxAllocs:
			verdict = fmt.Sprintf("FAIL +%d over the %d allocs/op ceiling (bytes %0.f→%0.f)",
				cur.allocs-b.MaxAllocs, b.MaxAllocs, b.BytesPerOp, cur.bytes)
			failed++
		case b.HasMax:
			verdict = fmt.Sprintf("ok (gated ≤ %d)", b.MaxAllocs)
		case cur.allocs > b.AllocsPerOp:
			verdict = fmt.Sprintf("WARN +%d allocs/op (bytes %0.f→%0.f)",
				cur.allocs-b.AllocsPerOp, b.BytesPerOp, cur.bytes)
			warned++
		case cur.allocs < b.AllocsPerOp:
			verdict = fmt.Sprintf("improved −%d allocs/op", b.AllocsPerOp-cur.allocs)
		}
		fmt.Printf("%-40s %14d %14d  %s\n", b.Name, cur.allocs, b.AllocsPerOp, verdict)
	}
	switch {
	case compared == 0:
		fmt.Println("benchdiff: no comparable benchmarks (run with -benchmem or b.ReportAllocs)")
	case failed > 0:
		fmt.Printf("benchdiff: %d gated benchmarks above their allocation ceiling\n", failed)
	case warned > 0:
		fmt.Printf("benchdiff: %d of %d benchmarks allocate more than the baseline (warn-only)\n", warned, compared)
	default:
		fmt.Printf("benchdiff: %d benchmarks at or below the allocation baseline\n", compared)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
