// Command benchdiff compares a `go test -bench` run against the repo's
// BENCH_baseline.json and reports allocation regressions. ns/op on shared
// CI runners is noise, so timing is never judged; allocs/op (and bytes/op
// where a ceiling is set) is the stable signal. Most benchmarks are
// compared warn-only, but entries carrying a "max_allocs_per_op" or
// "max_bytes_per_op" ceiling in the baseline — the BenchmarkCBRouting*
// hot paths — are gating: a run above a ceiling exits nonzero, which
// turns "the CB hot path gained three allocations" from an archaeology
// project into a failed CI step.
//
//	go test -bench . -benchtime 1x -run '^$' . > bench.txt
//	go run ./cmd/benchdiff BENCH_baseline.json bench.txt
//
// With -update the baseline file is rewritten in place from the run:
// measured numbers (iterations, ns/op, bytes/op, allocs/op, fps) refresh,
// ceilings and entries missing from the run are preserved verbatim.
//
//	go run ./cmd/benchdiff -update BENCH_baseline.json bench.txt
//
// Only benchmarks present in both inputs are compared.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// baseline mirrors BENCH_baseline.json.
type baseline struct {
	Description string           `json:"description"`
	Recorded    string           `json:"recorded"`
	GoOsArch    string           `json:"go_os_arch"`
	CPU         string           `json:"cpu"`
	Note        string           `json:"note"`
	Benchmarks  []baselineResult `json:"benchmarks"`
}

type baselineResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MaxAllocs   int64   `json:"max_allocs_per_op"`
	MaxBytes    float64 `json:"max_bytes_per_op"`
	FPS         float64 `json:"fps"`
	HasBytes    bool    `json:"-"`
	HasAllocs   bool    `json:"-"`
	HasMax      bool    `json:"-"`
	HasMaxBytes bool    `json:"-"`
	HasFPS      bool    `json:"-"`
}

// UnmarshalJSON remembers which optional fields were present: entries
// recorded without -benchmem report nothing to compare against, and only
// entries with an explicit ceiling gate.
func (r *baselineResult) UnmarshalJSON(b []byte) error {
	type plain baselineResult
	if err := json.Unmarshal(b, (*plain)(r)); err != nil {
		return err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return err
	}
	_, r.HasBytes = probe["bytes_per_op"]
	_, r.HasAllocs = probe["allocs_per_op"]
	_, r.HasMax = probe["max_allocs_per_op"]
	_, r.HasMaxBytes = probe["max_bytes_per_op"]
	_, r.HasFPS = probe["fps"]
	return nil
}

// fields returns the entry's key/value lines in the baseline file's
// canonical order, omitting the optional ones that were never present —
// so a -update round-trip produces minimal diffs against the
// hand-maintained file.
func (r baselineResult) fields() []string {
	out := []string{
		fmt.Sprintf(`"name": %s`, jsonString(r.Name)),
		fmt.Sprintf(`"iterations": %d`, r.Iterations),
		fmt.Sprintf(`"ns_per_op": %s`, jsonFloat(r.NsPerOp)),
	}
	if r.HasBytes {
		out = append(out, fmt.Sprintf(`"bytes_per_op": %s`, jsonFloat(r.BytesPerOp)))
	}
	if r.HasAllocs {
		out = append(out, fmt.Sprintf(`"allocs_per_op": %d`, r.AllocsPerOp))
	}
	if r.HasMax {
		out = append(out, fmt.Sprintf(`"max_allocs_per_op": %d`, r.MaxAllocs))
	}
	if r.HasMaxBytes {
		out = append(out, fmt.Sprintf(`"max_bytes_per_op": %s`, jsonFloat(r.MaxBytes)))
	}
	if r.HasFPS {
		out = append(out, fmt.Sprintf(`"fps": %s`, jsonFloat(r.FPS)))
	}
	return out
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// jsonFloat formats like the hand-written baseline: whole values keep a
// trailing ".0", fractional ones print at full precision.
func jsonFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

type runResult struct {
	iters    int64
	ns       float64
	bytes    float64
	allocs   int64
	fps      float64
	hasBytes bool
	hasAll   bool
	hasFPS   bool
}

// parseRun reads `go test -bench` output. A result line is the benchmark
// name, the iteration count, then (value, unit) pairs — "ns/op", "B/op",
// "allocs/op", plus any b.ReportMetric units ("fps", "frames/s", ...).
func parseRun(path string) (map[string]runResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]runResult)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := runResult{iters: iters}
		sawNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.ns, sawNs = v, true
			case "B/op":
				r.bytes, r.hasBytes = v, true
			case "allocs/op":
				r.allocs, r.hasAll = int64(v), true
			case "fps":
				r.fps, r.hasFPS = v, true
			}
		}
		if sawNs {
			out[fields[0]] = r
		}
	}
	return out, sc.Err()
}

// procSuffix matches the "-GOMAXPROCS" tail go test appends to benchmark
// names when GOMAXPROCS > 1.
var procSuffix = regexp.MustCompile(`-\d+$`)

// lookup resolves a baseline benchmark name in a run: exact first (the
// GOMAXPROCS=1 form the baseline records), then with one "-N" proc
// suffix appended — the only stripping that is unambiguous, because the
// baseline name anchors where the real name ends.
func lookup(run map[string]runResult, name string) (runResult, bool) {
	if r, ok := run[name]; ok {
		return r, true
	}
	for k, r := range run {
		if strings.HasPrefix(k, name+"-") && procSuffix.MatchString(k) && procSuffix.ReplaceAllString(k, "") == name {
			return r, true
		}
	}
	return runResult{}, false
}

func main() {
	update := flag.Bool("update", false, "rewrite the baseline file from the run (ceilings preserved)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-update] BENCH_baseline.json bench-output.txt")
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	basePath, runPath := flag.Arg(0), flag.Arg(1)
	raw, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: baseline:", err)
		os.Exit(2)
	}
	run, err := parseRun(runPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(basePath, &base, run); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: update:", err)
			os.Exit(2)
		}
		return
	}

	warned := 0
	failed := 0
	compared := 0
	fmt.Printf("%-40s %14s %14s  %s\n", "BENCHMARK", "ALLOCS/OP", "BASELINE", "VERDICT")
	for _, b := range base.Benchmarks {
		cur, ok := lookup(run, b.Name)
		if !ok || !b.HasAllocs || !cur.hasAll {
			if b.HasMax || b.HasMaxBytes {
				// A gated benchmark that silently vanishes from the run
				// would ungate itself; keep the hole visible in the log.
				fmt.Printf("%-40s %14s %14d  gated benchmark missing from run\n", b.Name, "-", b.AllocsPerOp)
			}
			continue
		}
		compared++
		verdict := "ok"
		switch {
		case b.HasMax && cur.allocs > b.MaxAllocs:
			verdict = fmt.Sprintf("FAIL +%d over the %d allocs/op ceiling (bytes %0.f→%0.f)",
				cur.allocs-b.MaxAllocs, b.MaxAllocs, b.BytesPerOp, cur.bytes)
			failed++
		case b.HasMaxBytes && cur.hasBytes && cur.bytes > b.MaxBytes:
			verdict = fmt.Sprintf("FAIL %0.f B/op over the %0.f B/op ceiling", cur.bytes, b.MaxBytes)
			failed++
		case b.HasMax && b.HasMaxBytes:
			verdict = fmt.Sprintf("ok (gated ≤ %d allocs, ≤ %0.f B)", b.MaxAllocs, b.MaxBytes)
		case b.HasMax:
			verdict = fmt.Sprintf("ok (gated ≤ %d)", b.MaxAllocs)
		case cur.allocs > b.AllocsPerOp:
			verdict = fmt.Sprintf("WARN +%d allocs/op (bytes %0.f→%0.f)",
				cur.allocs-b.AllocsPerOp, b.BytesPerOp, cur.bytes)
			warned++
		case cur.allocs < b.AllocsPerOp:
			verdict = fmt.Sprintf("improved −%d allocs/op", b.AllocsPerOp-cur.allocs)
		}
		fmt.Printf("%-40s %14d %14d  %s\n", b.Name, cur.allocs, b.AllocsPerOp, verdict)
	}
	switch {
	case compared == 0:
		fmt.Println("benchdiff: no comparable benchmarks (run with -benchmem or b.ReportAllocs)")
	case failed > 0:
		fmt.Printf("benchdiff: %d gated benchmarks above an allocation or bytes ceiling\n", failed)
	case warned > 0:
		fmt.Printf("benchdiff: %d of %d benchmarks allocate more than the baseline (warn-only)\n", warned, compared)
	default:
		fmt.Printf("benchdiff: %d benchmarks at or below the allocation baseline\n", compared)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeBaseline refreshes base's measured numbers from run and rewrites
// the file. Ceilings (max_allocs_per_op, max_bytes_per_op) and entries
// the run did not exercise are preserved verbatim, so -update cannot
// silently loosen a gate.
func writeBaseline(path string, base *baseline, run map[string]runResult) error {
	updated := 0
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		cur, ok := lookup(run, b.Name)
		if !ok {
			continue
		}
		b.Iterations = cur.iters
		b.NsPerOp = cur.ns
		if cur.hasBytes {
			b.BytesPerOp, b.HasBytes = cur.bytes, true
		}
		if cur.hasAll {
			b.AllocsPerOp, b.HasAllocs = cur.allocs, true
		}
		if cur.hasFPS {
			b.FPS, b.HasFPS = cur.fps, true
		}
		updated++
	}
	base.Recorded = time.Now().Format("2006-01-02")

	var out bytes.Buffer
	out.WriteString("{\n")
	fmt.Fprintf(&out, "  %q: %s,\n", "description", jsonString(base.Description))
	fmt.Fprintf(&out, "  %q: %s,\n", "recorded", jsonString(base.Recorded))
	fmt.Fprintf(&out, "  %q: %s,\n", "go_os_arch", jsonString(base.GoOsArch))
	fmt.Fprintf(&out, "  %q: %s,\n", "cpu", jsonString(base.CPU))
	fmt.Fprintf(&out, "  %q: %s,\n", "note", jsonString(base.Note))
	out.WriteString("  \"benchmarks\": [\n")
	for i, b := range base.Benchmarks {
		out.WriteString("    {\n      ")
		out.WriteString(strings.Join(b.fields(), ",\n      "))
		out.WriteString("\n    }")
		if i < len(base.Benchmarks)-1 {
			out.WriteString(",")
		}
		out.WriteString("\n")
	}
	out.WriteString("  ]\n}\n")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: refreshed %d of %d baseline entries in %s\n",
		updated, len(base.Benchmarks), path)
	return nil
}
