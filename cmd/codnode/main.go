// Command codnode runs a single COD node as its own OS process, for truly
// distributed multi-process runs over real UDP/TCP loopback sockets. Start
// one publisher and any number of subscribers in separate terminals:
//
//	codnode -name dyn-pc  -role pub -hz 60
//	codnode -name disp-pc -role sub
//	codnode -name disp-pc2 -role sub        # dynamic join, any time
//
// The publisher synthesizes a circling CraneState; subscribers print the
// receive rate once per second. All nodes discover each other through the
// Communication Backbone's broadcast protocol — there is no server. The
// whole program sits on the public cod SDK: typed classes, context-aware
// waits, no attribute maps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"codsim/cod"
	"codsim/internal/lp"
	"codsim/internal/obs"
)

// CraneState is codnode's object class: the circling crane the publisher
// synthesizes. Publisher and subscriber processes share this declaration.
type CraneState struct {
	X, Z      float64
	Heading   float64
	BoomLuff  float64
	BoomLen   float64
	CableLen  float64
	Stability float64
	EngineOn  bool
}

const className = "CraneState"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name    = flag.String("name", "", "unique node name (required)")
		role    = flag.String("role", "sub", "pub | sub")
		hz      = flag.Float64("hz", 60, "publish rate (pub role)")
		base    = flag.Int("base", 39800, "UDP segment base port")
		size    = flag.Int("size", 16, "UDP segment size (number of computer slots)")
		policy  = flag.String("policy", "latest", "subscriber delivery policy: latest | reliable | drop-oldest (sub role)")
		window  = flag.Int("window", 0, "reliable credit window (0 = backbone default; sub role with -policy reliable)")
		obsAddr = flag.String("obs", "", "serve the telemetry plane (/metrics, /healthz, /debug/tablez, /debug/pprof) on this address; empty = off")
	)
	flag.Parse()
	if *name == "" {
		return fmt.Errorf("-name is required")
	}

	node, err := cod.NewNode(*name, cod.WithUDPSegment("127.0.0.1", *base, *size))
	if err != nil {
		return err
	}
	defer node.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *obsAddr != "" {
		plane := obs.NewPlane(*role, os.Stderr, 0)
		plane.AddNode(*name, node)
		bound, err := plane.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer plane.Close()
		fmt.Printf("obs: telemetry plane on http://%s/metrics\n", bound)
	}

	switch *role {
	case "pub":
		return runPublisher(ctx, node, *hz)
	case "sub":
		var opt cod.SubOption
		switch *policy {
		case "latest":
			opt = cod.LatestValue()
		case "reliable":
			opt = cod.Reliable(*window)
		case "drop-oldest":
			opt = cod.DropOldest()
		default:
			return fmt.Errorf("unknown -policy %q (latest | reliable | drop-oldest)", *policy)
		}
		return runSubscriber(ctx, node, opt)
	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}

func runPublisher(ctx context.Context, node *cod.Node, hz float64) error {
	pub, err := cod.Publish[CraneState](node, "dynamics", className)
	if err != nil {
		return err
	}
	fmt.Printf("publisher %s: publishing %s at %.0f Hz; waiting for subscribers...\n",
		node.Name(), className, hz)

	runner, err := lp.NewRunner("pub", hz, func(simTime, _ float64) error {
		st := CraneState{
			X:         20 * math.Cos(simTime/5),
			Z:         20 * math.Sin(simTime/5),
			Heading:   simTime / 5,
			BoomLuff:  0.8,
			BoomLen:   12,
			CableLen:  5,
			Stability: 1,
			EngineOn:  true,
		}
		err := pub.Update(simTime, st)
		if errors.Is(err, cod.ErrNoSubscribers) {
			return nil // free-running ahead of discovery is fine
		}
		return err
	}, lp.Realtime())
	if err != nil {
		return err
	}
	if err := runner.Start(); err != nil {
		return err
	}
	report := time.NewTicker(time.Second)
	defer report.Stop()
	for {
		select {
		case <-ctx.Done():
			runner.Stop()
			return nil
		case <-report.C:
			fmt.Printf("  channels=%d updatesSent=%d\n",
				pub.Channels(), node.Stats().UpdatesSent.Value())
		}
	}
}

func runSubscriber(ctx context.Context, node *cod.Node, policy cod.SubOption) error {
	sub, err := cod.Subscribe[CraneState](node, "visual", className, cod.WithQueue(256), policy)
	if err != nil {
		return err
	}
	fmt.Printf("subscriber %s: broadcasting SUBSCRIPTION for %s...\n",
		node.Name(), className)

	var received atomic.Int64
	go func() {
		for {
			r, err := sub.Next(ctx)
			switch {
			case err == nil:
			case ctx.Err() != nil || errors.Is(err, cod.ErrHandleClosed):
				return // shutting down
			default:
				// Keep receiving: a decode mismatch (e.g. a peer built
				// with a different CraneState) must not silently freeze
				// the counter.
				fmt.Fprintln(os.Stderr, "  reflect dropped:", err)
				continue
			}
			if received.Add(1) == 1 {
				fmt.Printf("  first state from %s/%s: pos=%.1f,%.1f\n",
					r.PubNode, r.PubLP, r.Value.X, r.Value.Z)
			}
		}
	}()

	report := time.NewTicker(time.Second)
	defer report.Stop()
	var lastCount int64
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-report.C:
			total := received.Load()
			fmt.Printf("  matched=%v rate=%d msg/s total=%d%s\n",
				sub.Matched(), total-lastCount, total, lossReport(node))
			lastCount = total
		}
	}
}

// lossReport names the lossy channels of the node's subscriptions from
// the per-channel drop/conflation tallies in the backbone tables.
func lossReport(node *cod.Node) string {
	_, subs := node.Tables()
	out := ""
	for _, row := range subs {
		if row.Dropped == 0 && row.Conflated == 0 {
			continue
		}
		out += fmt.Sprintf(" %s[%s]", row.Class, row.Policy)
		for _, ch := range row.ByChannel {
			if ch.Dropped == 0 && ch.Conflated == 0 {
				continue
			}
			out += fmt.Sprintf(" ch%d(%s): dropped=%d conflated=%d",
				ch.Channel, ch.Peer, ch.Dropped, ch.Conflated)
		}
	}
	return out
}
