// Command codnode runs a single COD node as its own OS process, for truly
// distributed multi-process runs over real UDP/TCP loopback sockets. Start
// one publisher and any number of subscribers in separate terminals:
//
//	codnode -name dyn-pc  -role pub -hz 60
//	codnode -name disp-pc -role sub
//	codnode -name disp-pc2 -role sub        # dynamic join, any time
//
// The publisher synthesizes a circling CraneState; subscribers print the
// receive rate once per second. All nodes discover each other through the
// Communication Backbone's broadcast protocol — there is no server.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codsim/internal/cb"
	"codsim/internal/fom"
	"codsim/internal/lp"
	"codsim/internal/mathx"
	"codsim/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name = flag.String("name", "", "unique node name (required)")
		role = flag.String("role", "sub", "pub | sub")
		hz   = flag.Float64("hz", 60, "publish rate (pub role)")
		base = flag.Int("base", 39800, "UDP segment base port")
		size = flag.Int("size", 16, "UDP segment size (number of computer slots)")
	)
	flag.Parse()
	if *name == "" {
		return fmt.Errorf("-name is required")
	}

	lan, err := transport.NewUDPLAN("127.0.0.1", *base, *size)
	if err != nil {
		return err
	}
	backbone, err := cb.New(lan, *name, cb.Config{})
	if err != nil {
		return err
	}
	defer backbone.Close()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	switch *role {
	case "pub":
		return runPublisher(backbone, *hz, stop)
	case "sub":
		return runSubscriber(backbone, stop)
	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}

func runPublisher(backbone *cb.Backbone, hz float64, stop <-chan os.Signal) error {
	pub, err := backbone.PublishObjectClass("dynamics", fom.ClassCraneState)
	if err != nil {
		return err
	}
	fmt.Printf("publisher %s: publishing %s at %.0f Hz; waiting for subscribers...\n",
		backbone.Node(), fom.ClassCraneState, hz)

	runner, err := lp.NewRunner("pub", hz, func(simTime, _ float64) error {
		st := fom.CraneState{
			Position:  mathx.V3(20*math.Cos(simTime/5), 0, 20*math.Sin(simTime/5)),
			Heading:   simTime / 5,
			BoomLuff:  0.8,
			BoomLen:   12,
			CableLen:  5,
			Stability: 1,
			EngineOn:  true,
		}
		return pub.Update(simTime, st.Encode())
	}, lp.Realtime())
	if err != nil {
		return err
	}
	if err := runner.Start(); err != nil {
		return err
	}
	report := time.NewTicker(time.Second)
	defer report.Stop()
	for {
		select {
		case <-stop:
			runner.Stop()
			return nil
		case <-report.C:
			fmt.Printf("  channels=%d updatesSent=%d\n",
				pub.Channels(), backbone.Stats().UpdatesSent.Value())
		}
	}
}

func runSubscriber(backbone *cb.Backbone, stop <-chan os.Signal) error {
	sub, err := backbone.SubscribeObjectClass("visual", fom.ClassCraneState, cb.WithQueue(256))
	if err != nil {
		return err
	}
	fmt.Printf("subscriber %s: broadcasting SUBSCRIPTION for %s...\n",
		backbone.Node(), fom.ClassCraneState)

	report := time.NewTicker(time.Second)
	defer report.Stop()
	var received, lastCount int64
	for {
		select {
		case <-stop:
			return nil
		case <-report.C:
			rate := received - lastCount
			lastCount = received
			fmt.Printf("  matched=%v rate=%d msg/s total=%d\n", sub.Matched(), rate, received)
		default:
			if r, ok := sub.Next(50 * time.Millisecond); ok {
				received++
				if received == 1 {
					if st, err := fom.DecodeCraneState(r.Attrs); err == nil {
						fmt.Printf("  first state from %s/%s: pos=%.1f,%.1f\n",
							r.PubNode, r.PubLP, st.Position.X, st.Position.Z)
					}
				}
			}
		}
	}
}
