// Command experiments regenerates every quantitative artifact of the paper
// (see DESIGN.md §3 and EXPERIMENTS.md): the §4 surround-view frame-rate
// measurement and the behaviours behind Figures 1–10. Each experiment
// prints a table; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments [-exp all|1|2|...|7] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type experiment struct {
	id    int
	title string
	run   func(quick bool) error
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiment to run: all or 1..7")
		quick   = flag.Bool("quick", false, "smaller sweeps for a fast pass")
	)
	flag.Parse()

	exps := []experiment{
		{1, "EXP-1 surround-view frame rate (§4, Fig. 10/11)", exp1SurroundView},
		{2, "EXP-2 CB virtual-channel routing (Fig. 1/2, §2.2)", exp2Routing},
		{3, "EXP-3 initialization protocol & dynamic join (§2.3)", exp3Init},
		{4, "EXP-4 Stewart platform & washout (§3.4, Fig. 7)", exp4Motion},
		{5, "EXP-5 dynamics: oscillation & collision (§3.6)", exp5Dynamics},
		{6, "EXP-6 licensing exam & scoring (§3.5, Fig. 5/8/9)", exp6Exam},
		{7, "EXP-7 COD scaling ablation (§2.1, §5)", exp7Scaling},
	}

	var failed bool
	for _, e := range exps {
		if *expFlag != "all" {
			want, err := strconv.Atoi(*expFlag)
			if err != nil || want < 1 || want > len(exps) {
				fmt.Fprintf(os.Stderr, "experiments: bad -exp %q\n", *expFlag)
				os.Exit(2)
			}
			if e.id != want {
				continue
			}
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(e.title)
		fmt.Println(strings.Repeat("=", 72))
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: EXP-%d: %v\n", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
