package main

import (
	"fmt"
	"time"

	"codsim/cod"
	"codsim/internal/metrics"
	"codsim/internal/sim"
)

// exp7Scaling runs the full seven-module federation and sweeps the
// simulated LAN latency, the §2.1/§5 ablation: at zero latency the COD
// behaves like a single shared-memory machine; growing latency shows how
// much headroom the fully distributed design has before the surround view
// and the control loop degrade.
func exp7Scaling(quick bool) error {
	latencies := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 15 * time.Millisecond}
	if quick {
		latencies = []time.Duration{0, 5 * time.Millisecond}
	}
	runWall := 6 * time.Second
	if quick {
		runWall = 3 * time.Second
	}

	tbl := metrics.NewTable("LAN latency", "display fps (mean)", "swaps", "updates sent", "reflects delivered", "exam phase")
	for _, lat := range latencies {
		lan := cod.NewMemLAN(cod.WithLatency(lat), cod.WithSeed(7))
		cluster, err := sim.New(sim.Config{
			LAN:       lan,
			CB:        fastSimCB(),
			TimeScale: 4,
			Width:     320,
			Height:    240,
			Polygons:  3235,
			Autopilot: true,
			AutoStart: true,
		})
		if err != nil {
			return err
		}
		if err := cluster.Start(); err != nil {
			cluster.Stop()
			return err
		}
		time.Sleep(runWall)
		if err := cluster.Err(); err != nil {
			cluster.Stop()
			return fmt.Errorf("latency %v: %w", lat, err)
		}
		sum := cluster.Summary()
		var updates, reflects int64
		for _, node := range []string{
			sim.NodeSim, sim.NodeDashboard, sim.NodeMotion,
			sim.NodeInstructor, sim.NodeSyncServer,
		} {
			st := cluster.Backbone(node).Stats()
			updates += st.UpdatesSent.Value()
			reflects += st.ReflectsDelivered.Value()
		}
		var fps float64
		for _, f := range sum.DisplayFPS {
			fps += f
		}
		if n := len(sum.DisplayFPS); n > 0 {
			fps /= float64(n)
		}
		cluster.Stop()
		tbl.AddRow(lat.String(), fps, sum.ServerSwaps, updates, reflects, sum.Scenario.Phase.String())
	}
	fmt.Print(tbl.String())
	fmt.Println("(zero latency ≈ one shared machine; the COD tolerates LAN-scale delay)")
	return nil
}
