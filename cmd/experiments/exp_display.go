package main

import (
	"fmt"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/displaysync"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/metrics"
	"codsim/internal/render"
	"codsim/internal/sim"
	"codsim/internal/terrain"
)

// fastSimCB mirrors fastNode's accelerated protocol timers in the form
// sim.Config takes.
func fastSimCB() sim.CBConfig {
	return sim.CBConfig{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   50 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	}
}

// renderRig owns one display computer's renderer and scene.
type renderRig struct {
	builder *render.SceneBuilder
	rend    *render.Renderer
	cam     render.Camera
	state   fom.CraneState
}

func newRenderRig(polygons, w, h, camIdx, camCount int) (*renderRig, error) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return nil, err
	}
	builder, err := render.NewSceneBuilder(ter, nil, polygons)
	if err != nil {
		return nil, err
	}
	rend, err := render.NewRenderer(w, h)
	if err != nil {
		return nil, err
	}
	st := fom.CraneState{
		Position: mathx.V3(100, ter.HeightAt(100, 100), 100),
		BoomLuff: mathx.Rad(45), BoomLen: 14, CableLen: 6,
		HookPos:  mathx.V3(100, 6, 90),
		CargoPos: mathx.V3(100, 1, 90),
	}
	eye := st.Position.Add(mathx.V3(0, 3.2, 0))
	cams := render.SurroundCameras(eye, 0, camCount, mathx.Rad(40), float64(w)/float64(h))
	return &renderRig{builder: builder, rend: rend, cam: cams[camIdx], state: st}, nil
}

// renderFrame draws one frame with slight animation so no frame is free.
func (r *renderRig) renderFrame(frame uint32) {
	r.state.BoomSwing = 0.3 * mathx.Rad(float64(frame%120)-60)
	scene := r.builder.Frame(r.state)
	r.rend.Render(scene, r.cam)
}

// measureFreeRun renders frames unsynchronized on one display.
func measureFreeRun(polygons, w, h, frames int) (fps float64, err error) {
	rig, err := newRenderRig(polygons, w, h, 0, 1)
	if err != nil {
		return 0, err
	}
	var tracker metrics.FrameTracker
	for f := 0; f < frames; f++ {
		start := time.Now()
		rig.renderFrame(uint32(f))
		tracker.TickInterval(time.Since(start))
	}
	return tracker.FPS(), nil
}

// measureSynced runs n displays + the synchronization server over the CB
// and returns the mean achieved fps across displays. pipeline = 1 is the
// paper's strict swap-lock; deeper values are the §5 acceleration.
func measureSynced(displays, polygons, w, h, frames, pipeline int) (fps float64, err error) {
	lan := cod.NewMemLAN()
	serverNode, err := fastNode(lan, "sync-server")
	if err != nil {
		return 0, err
	}
	defer serverNode.Close()

	expected := make([]string, displays)
	for i := range expected {
		expected[i] = fmt.Sprintf("display-%d", i+1)
	}
	// displaysync predates the SDK and takes the raw backbone; Node's
	// documented Backbone() escape hatch exists for exactly these
	// internal modules.
	srv, err := displaysync.NewServer(serverNode.Backbone(), "sync", displaysync.ServerConfig{
		Expected: expected, StallTimeout: 5 * time.Second, Pipeline: pipeline,
	})
	if err != nil {
		return 0, err
	}
	srv.Start()
	defer srv.Stop()

	type dispUnit struct {
		client *displaysync.Display
		rig    *renderRig
		node   *cod.Node
	}
	units := make([]*dispUnit, displays)
	for i := range units {
		node, err := fastNode(lan, fmt.Sprintf("display-pc-%d", i+1))
		if err != nil {
			return 0, err
		}
		defer node.Close()
		client, err := displaysync.NewDisplay(node.Backbone(), expected[i])
		if err != nil {
			return 0, err
		}
		rig, err := newRenderRig(polygons, w, h, i, displays)
		if err != nil {
			return 0, err
		}
		units[i] = &dispUnit{client: client, rig: rig, node: node}
	}
	for _, u := range units {
		if !u.client.WaitServer(10 * time.Second) {
			return 0, fmt.Errorf("display never linked")
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, displays)
	for i, u := range units {
		wg.Add(1)
		go func(i int, u *dispUnit) {
			defer wg.Done()
			errs[i] = u.client.RunFrames(frames, 30*time.Second, u.rig.renderFrame)
		}(i, u)
	}
	wg.Wait()
	var total float64
	for i, u := range units {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += u.client.FPS()
	}
	return total / float64(displays), nil
}

// exp1SurroundView reproduces the §4 measurement: synchronized surround
// view fps versus polygon count and display count, against the free-running
// single display. The paper reports 16 fps at 3235 polygons on three
// synchronized displays; on modern CPUs the absolute numbers are far
// higher, but the *shape* — the synchronization overhead and the decline
// with polygon count — is the reproduced result.
func exp1SurroundView(quick bool) error {
	const w, h = 640, 480
	frames := 120
	polySweep := []int{800, 1600, 3235, 6500, 13000}
	if quick {
		frames = 30
		polySweep = []int{800, 3235}
	}

	fmt.Println("paper reference: 3 displays + sync server @ 3235 polygons -> 16 fps")
	tbl := metrics.NewTable("polygons", "free-run 1 display (fps)", "synced 3 displays (fps)", "sync overhead %")
	for _, p := range polySweep {
		free, err := measureFreeRun(p, w, h, frames)
		if err != nil {
			return err
		}
		synced, err := measureSynced(3, p, w, h, frames, 1)
		if err != nil {
			return err
		}
		overhead := (1 - synced/free) * 100
		tbl.AddRow(p, free, synced, overhead)
	}
	fmt.Print(tbl.String())

	fmt.Println("\ndisplay-count sweep @ 3235 polygons:")
	dispSweep := []int{1, 2, 3, 4}
	if quick {
		dispSweep = []int{1, 3}
	}
	tbl2 := metrics.NewTable("displays", "synced fps", "server swaps/frame")
	for _, d := range dispSweep {
		synced, err := measureSynced(d, 3235, w, h, frames, 1)
		if err != nil {
			return err
		}
		tbl2.AddRow(d, synced, 1)
	}
	fmt.Print(tbl2.String())

	// The §5 future-work ablation: pipeline depth vs throughput.
	fmt.Println("\npipelined swap-lock (§5 'further accelerating the frame rate'), 3 displays @ 3235 polygons:")
	pipeSweep := []int{1, 2, 3}
	if quick {
		pipeSweep = []int{1, 2}
	}
	tbl3 := metrics.NewTable("pipeline depth", "synced fps", "frame skew bound")
	for _, p := range pipeSweep {
		synced, err := measureSynced(3, 3235, w, h, frames, p)
		if err != nil {
			return err
		}
		tbl3.AddRow(p, synced, p)
	}
	fmt.Print(tbl3.String())
	return nil
}
