package main

import (
	"context"
	"fmt"
	"time"

	"codsim/cod"
	"codsim/internal/metrics"
)

// expState is the object class the routing experiments exchange: the
// same field load a crane-state update carries, mapped through the SDK
// codec exactly as production traffic is.
type expState struct {
	X, Z      float64
	Heading   float64
	BoomLuff  float64
	BoomLen   float64
	CableLen  float64
	Stability float64
	EngineOn  bool
}

// expPing is the minimal round-trip payload.
type expPing struct {
	Seq uint32
}

// fastNode attaches a node to lan with the experiments' accelerated
// discovery timers (5 ms broadcast, 250 ms death) so trials converge
// quickly.
func fastNode(lan cod.LAN, name string) (*cod.Node, error) {
	return cod.NewNode(name,
		cod.WithLAN(lan),
		cod.WithTimers(5*time.Millisecond, 50*time.Millisecond, 25*time.Millisecond),
		cod.WithHeartbeatTimeout(250*time.Millisecond))
}

// exp2Routing measures virtual-channel message routing: the in-process
// fast path versus cross-node channels, one-way throughput, and 1→N
// fan-out (Fig. 1/2 behaviours).
func exp2Routing(quick bool) error {
	msgs := 20000
	if quick {
		msgs = 3000
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// --- Local fast path: publisher and subscriber on the same node. ---
	lan := cod.NewMemLAN()
	solo, err := fastNode(lan, "solo")
	if err != nil {
		return err
	}
	defer solo.Close()
	pubL, err := cod.Publish[expState](solo, "p", "State")
	if err != nil {
		return err
	}
	// The mailbox must hold the full burst under the legacy drop-oldest
	// contract: a smaller queue would silently shed messages and
	// understate the loss-free rate, and a conflating policy would merge
	// them.
	subL, err := cod.Subscribe[expState](solo, "s", "State", cod.WithQueue(msgs+16), cod.DropOldest())
	if err != nil {
		return err
	}
	if err := subL.WaitMatched(ctx); err != nil {
		return fmt.Errorf("local channel: %w", err)
	}
	localRate, err := measureThroughput(ctx, pubL, subL, msgs)
	if err != nil {
		return err
	}

	// --- Remote channel over the in-memory LAN. ---
	pubNode, err := fastNode(lan, "pub-pc")
	if err != nil {
		return err
	}
	defer pubNode.Close()
	subNode, err := fastNode(lan, "sub-pc")
	if err != nil {
		return err
	}
	defer subNode.Close()
	pubR, err := cod.Publish[expState](pubNode, "p", "RState")
	if err != nil {
		return err
	}
	subR, err := cod.Subscribe[expState](subNode, "s", "RState", cod.WithQueue(msgs+16), cod.DropOldest())
	if err != nil {
		return err
	}
	if err := subR.WaitMatched(ctx); err != nil {
		return fmt.Errorf("remote channel never established: %w", err)
	}
	remoteRate, err := measureThroughput(ctx, pubR, subR, msgs)
	if err != nil {
		return err
	}

	// --- Remote round-trip latency (ping-pong over two classes). ---
	rtt, err := measureRTT(ctx, lan, 300)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("path", "throughput (msg/s)", "round trip (µs)")
	tbl.AddRow("in-process fast path", localRate, "-")
	tbl.AddRow("cross-node channel", remoteRate, fmt.Sprintf("%.0f", rtt.Mean()*1e6))
	fmt.Print(tbl.String())

	// --- Fan-out: 1 publisher → N subscriber nodes. ---
	fmt.Println("\nfan-out (1 publisher, N subscriber nodes, msgs delivered/s total):")
	fanSweep := []int{1, 2, 4, 8}
	if quick {
		fanSweep = []int{1, 4}
	}
	tbl2 := metrics.NewTable("subscribers", "aggregate delivery (msg/s)")
	for _, n := range fanSweep {
		rate, err := measureFanout(ctx, n, msgs/4)
		if err != nil {
			return err
		}
		tbl2.AddRow(n, rate)
	}
	fmt.Print(tbl2.String())
	return nil
}

func measureThroughput(ctx context.Context, pub *cod.Pub[expState], sub *cod.Sub[expState], msgs int) (float64, error) {
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < msgs; i++ {
			if _, err := sub.Next(ctx); err != nil {
				done <- fmt.Errorf("receive failed at %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()
	st := expState{Stability: 1, BoomLen: 12, CableLen: 5, EngineOn: true}
	for i := 0; i < msgs; i++ {
		if err := pub.Update(float64(i), st); err != nil {
			return 0, err
		}
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return float64(msgs) / time.Since(start).Seconds(), nil
}

// measureRTT ping-pongs a tiny update between two nodes.
func measureRTT(ctx context.Context, lan cod.LAN, rounds int) (*metrics.Summary, error) {
	a, err := fastNode(lan, "rtt-a")
	if err != nil {
		return nil, err
	}
	defer a.Close()
	b, err := fastNode(lan, "rtt-b")
	if err != nil {
		return nil, err
	}
	defer b.Close()

	pingPub, err := cod.Publish[expPing](a, "a", "Ping")
	if err != nil {
		return nil, err
	}
	pongSub, err := cod.Subscribe[expPing](a, "a", "Pong", cod.WithQueue(16), cod.DropOldest())
	if err != nil {
		return nil, err
	}
	pingSub, err := cod.Subscribe[expPing](b, "b", "Ping", cod.WithQueue(16), cod.DropOldest())
	if err != nil {
		return nil, err
	}
	pongPub, err := cod.Publish[expPing](b, "b", "Pong")
	if err != nil {
		return nil, err
	}
	if err := pingSub.WaitMatched(ctx); err != nil {
		return nil, fmt.Errorf("rtt ping channel: %w", err)
	}
	if err := pongSub.WaitMatched(ctx); err != nil {
		return nil, fmt.Errorf("rtt pong channel: %w", err)
	}

	// Echo loop on node b, stopped by canceling its context.
	echoCtx, stopEcho := context.WithCancel(ctx)
	defer stopEcho()
	go func() {
		for {
			r, err := pingSub.Next(echoCtx)
			if err != nil {
				return // canceled or closed: shutting down
			}
			_ = pongPub.Update(r.Time, expPing{Seq: r.Value.Seq})
		}
	}()

	var rtt metrics.Summary
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := pingPub.Update(float64(i), expPing{Seq: uint32(i)}); err != nil {
			return nil, err
		}
		if _, err := pongSub.Next(ctx); err != nil {
			return nil, fmt.Errorf("pong %d lost: %w", i, err)
		}
		rtt.Observe(time.Since(start).Seconds())
	}
	return &rtt, nil
}

func measureFanout(ctx context.Context, subs, msgs int) (float64, error) {
	lan := cod.NewMemLAN()
	pubNode, err := fastNode(lan, "pub-pc")
	if err != nil {
		return 0, err
	}
	defer pubNode.Close()
	pub, err := cod.Publish[expPing](pubNode, "p", "Fan")
	if err != nil {
		return 0, err
	}

	sl := make([]*cod.Sub[expPing], subs)
	for i := range sl {
		node, err := fastNode(lan, fmt.Sprintf("sub-pc-%d", i))
		if err != nil {
			return 0, err
		}
		defer node.Close()
		s, err := cod.Subscribe[expPing](node, "s", "Fan", cod.WithQueue(msgs+16), cod.DropOldest())
		if err != nil {
			return 0, err
		}
		sl[i] = s
	}
	for _, s := range sl {
		if err := s.WaitMatched(ctx); err != nil {
			return 0, fmt.Errorf("fan-out channel missing: %w", err)
		}
	}

	done := make(chan error, subs)
	start := time.Now()
	for _, s := range sl {
		go func(s *cod.Sub[expPing]) {
			for i := 0; i < msgs; i++ {
				if _, err := s.Next(ctx); err != nil {
					done <- fmt.Errorf("fanout receive: %w", err)
					return
				}
			}
			done <- nil
		}(s)
	}
	for i := 0; i < msgs; i++ {
		if err := pub.Update(float64(i), expPing{Seq: uint32(i)}); err != nil {
			return 0, err
		}
	}
	for range sl {
		if err := <-done; err != nil {
			return 0, err
		}
	}
	return float64(msgs*subs) / time.Since(start).Seconds(), nil
}

// exp3Init measures the initialization protocol: virtual-channel
// establishment latency versus subscriber count, convergence under
// datagram loss, and the dynamic-join latency of an extra display (§2.3).
func exp3Init(quick bool) error {
	trials := 20
	if quick {
		trials = 5
	}

	fmt.Println("channel establishment latency (subscriber registers after publisher):")
	tbl := metrics.NewTable("subscriber entries", "mean (ms)", "max (ms)")
	for _, n := range []int{1, 4, 8, 16} {
		var lat metrics.Summary
		for trial := 0; trial < trials; trial++ {
			if err := establishTrial(n, 0, int64(trial), &lat); err != nil {
				return err
			}
		}
		tbl.AddRow(n, lat.Mean()*1000, lat.Max()*1000)
	}
	fmt.Print(tbl.String())

	fmt.Println("\nconvergence under broadcast datagram loss (8 entries):")
	tbl2 := metrics.NewTable("loss %", "mean (ms)", "max (ms)")
	for _, loss := range []float64{0, 0.2, 0.5} {
		var lat metrics.Summary
		for trial := 0; trial < trials; trial++ {
			if err := establishTrial(8, loss, int64(trial), &lat); err != nil {
				return err
			}
		}
		tbl2.AddRow(loss*100, lat.Mean()*1000, lat.Max()*1000)
	}
	fmt.Print(tbl2.String())
	return nil
}

// establishTrial creates one publisher node and one subscriber node with n
// class entries and records per-entry establishment latency. Each trial
// seeds the segment's loss pattern differently so the sweep samples
// independent drop sequences.
func establishTrial(n int, loss float64, trial int64, lat *metrics.Summary) error {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	lan := cod.NewMemLAN(cod.WithLoss(loss), cod.WithSeed(trial*7919+int64(loss*1000)))
	pubNode, err := fastNode(lan, "pub-pc")
	if err != nil {
		return err
	}
	defer pubNode.Close()
	for i := 0; i < n; i++ {
		if _, err := cod.Publish[expPing](pubNode, "p", fmt.Sprintf("Class%d", i)); err != nil {
			return err
		}
	}
	subNode, err := fastNode(lan, "sub-pc")
	if err != nil {
		return err
	}
	defer subNode.Close()
	subs := make([]*cod.Sub[expPing], n)
	for i := range subs {
		s, err := cod.Subscribe[expPing](subNode, "s", fmt.Sprintf("Class%d", i), cod.LatestValue())
		if err != nil {
			return err
		}
		subs[i] = s
	}
	for i, s := range subs {
		if err := s.WaitMatched(ctx); err != nil {
			return fmt.Errorf("entry %d never matched (loss %.0f%%): %w", i, loss*100, err)
		}
	}
	// The backbone recorded per-entry latency in its stats.
	st := subNode.Stats()
	lat.Observe(st.EstablishLatency.Max())
	return nil
}
