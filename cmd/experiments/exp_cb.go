package main

import (
	"fmt"
	"time"

	"codsim/internal/cb"
	"codsim/internal/fom"
	"codsim/internal/metrics"
	"codsim/internal/transport"
	"codsim/internal/wire"
)

// exp2Routing measures virtual-channel message routing: the in-process
// fast path versus cross-node channels, one-way throughput, and 1→N
// fan-out (Fig. 1/2 behaviours).
func exp2Routing(quick bool) error {
	msgs := 20000
	if quick {
		msgs = 3000
	}

	attrs := fom.CraneState{Stability: 1}.Encode()

	// --- Local fast path: publisher and subscriber on the same CB. ---
	lan := transport.NewMemLAN()
	solo, err := cb.New(lan, "solo", fastCB())
	if err != nil {
		return err
	}
	defer solo.Close()
	pubL, err := solo.PublishObjectClass("p", "State")
	if err != nil {
		return err
	}
	// The mailbox must hold the full burst: a smaller drop-oldest queue
	// would silently shed messages and understate the loss-free rate.
	subL, err := solo.SubscribeObjectClass("s", "State", cb.WithQueue(msgs+16))
	if err != nil {
		return err
	}
	localRate, err := measureThroughput(pubL, subL, attrs, msgs)
	if err != nil {
		return err
	}

	// --- Remote channel over the in-memory LAN. ---
	pubNode, err := cb.New(lan, "pub-pc", fastCB())
	if err != nil {
		return err
	}
	defer pubNode.Close()
	subNode, err := cb.New(lan, "sub-pc", fastCB())
	if err != nil {
		return err
	}
	defer subNode.Close()
	pubR, err := pubNode.PublishObjectClass("p", "RState")
	if err != nil {
		return err
	}
	subR, err := subNode.SubscribeObjectClass("s", "RState", cb.WithQueue(msgs+16))
	if err != nil {
		return err
	}
	if !subR.WaitMatched(5 * time.Second) {
		return fmt.Errorf("remote channel never established")
	}
	remoteRate, err := measureThroughput(pubR, subR, attrs, msgs)
	if err != nil {
		return err
	}

	// --- Remote round-trip latency (ping-pong over two classes). ---
	rtt, err := measureRTT(lan, 300)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("path", "throughput (msg/s)", "round trip (µs)")
	tbl.AddRow("in-process fast path", localRate, "-")
	tbl.AddRow("cross-node channel", remoteRate, fmt.Sprintf("%.0f", rtt.Mean()*1e6))
	fmt.Print(tbl.String())

	// --- Fan-out: 1 publisher → N subscriber nodes. ---
	fmt.Println("\nfan-out (1 publisher, N subscriber nodes, msgs delivered/s total):")
	fanSweep := []int{1, 2, 4, 8}
	if quick {
		fanSweep = []int{1, 4}
	}
	tbl2 := metrics.NewTable("subscribers", "aggregate delivery (msg/s)")
	for _, n := range fanSweep {
		rate, err := measureFanout(n, msgs/4)
		if err != nil {
			return err
		}
		tbl2.AddRow(n, rate)
	}
	fmt.Print(tbl2.String())
	return nil
}

func measureThroughput(pub *cb.Publication, sub *cb.Subscription, attrs wire.AttrSet, msgs int) (float64, error) {
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < msgs; i++ {
			if _, ok := sub.Next(10 * time.Second); !ok {
				done <- fmt.Errorf("receive timed out at %d", i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < msgs; i++ {
		if err := pub.Update(float64(i), attrs); err != nil {
			return 0, err
		}
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return float64(msgs) / time.Since(start).Seconds(), nil
}

// measureRTT ping-pongs a tiny update between two nodes.
func measureRTT(lan transport.LAN, rounds int) (*metrics.Summary, error) {
	a, err := cb.New(lan, "rtt-a", fastCB())
	if err != nil {
		return nil, err
	}
	defer a.Close()
	b, err := cb.New(lan, "rtt-b", fastCB())
	if err != nil {
		return nil, err
	}
	defer b.Close()

	pingPub, err := a.PublishObjectClass("a", "Ping")
	if err != nil {
		return nil, err
	}
	pongSub, err := a.SubscribeObjectClass("a", "Pong", cb.WithQueue(16))
	if err != nil {
		return nil, err
	}
	pingSub, err := b.SubscribeObjectClass("b", "Ping", cb.WithQueue(16))
	if err != nil {
		return nil, err
	}
	pongPub, err := b.PublishObjectClass("b", "Pong")
	if err != nil {
		return nil, err
	}
	if !pingSub.WaitMatched(5*time.Second) || !pongSub.WaitMatched(5*time.Second) {
		return nil, fmt.Errorf("rtt channels never established")
	}

	// Echo loop on node b.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if r, ok := pingSub.Next(100 * time.Millisecond); ok {
				_ = pongPub.Update(r.Time, nil)
			}
		}
	}()

	var rtt metrics.Summary
	attrs := wire.AttrSet{}
	attrs.PutUint32(1, 0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := pingPub.Update(float64(i), attrs); err != nil {
			return nil, err
		}
		if _, ok := pongSub.Next(5 * time.Second); !ok {
			return nil, fmt.Errorf("pong %d lost", i)
		}
		rtt.Observe(time.Since(start).Seconds())
	}
	return &rtt, nil
}

func measureFanout(subs, msgs int) (float64, error) {
	lan := transport.NewMemLAN()
	pubNode, err := cb.New(lan, "pub-pc", fastCB())
	if err != nil {
		return 0, err
	}
	defer pubNode.Close()
	pub, err := pubNode.PublishObjectClass("p", "Fan")
	if err != nil {
		return 0, err
	}

	sl := make([]*cb.Subscription, subs)
	for i := range sl {
		node, err := cb.New(lan, fmt.Sprintf("sub-pc-%d", i), fastCB())
		if err != nil {
			return 0, err
		}
		defer node.Close()
		s, err := node.SubscribeObjectClass("s", "Fan", cb.WithQueue(msgs+16))
		if err != nil {
			return 0, err
		}
		sl[i] = s
	}
	for _, s := range sl {
		if !s.WaitMatched(5 * time.Second) {
			return 0, fmt.Errorf("fan-out channel missing")
		}
	}

	attrs := wire.AttrSet{}
	attrs.PutFloat64(1, 1)
	done := make(chan error, subs)
	start := time.Now()
	for _, s := range sl {
		go func(s *cb.Subscription) {
			for i := 0; i < msgs; i++ {
				if _, ok := s.Next(10 * time.Second); !ok {
					done <- fmt.Errorf("fanout receive timeout")
					return
				}
			}
			done <- nil
		}(s)
	}
	for i := 0; i < msgs; i++ {
		if err := pub.Update(float64(i), attrs); err != nil {
			return 0, err
		}
	}
	for range sl {
		if err := <-done; err != nil {
			return 0, err
		}
	}
	return float64(msgs*subs) / time.Since(start).Seconds(), nil
}

// exp3Init measures the initialization protocol: virtual-channel
// establishment latency versus subscriber count, convergence under
// datagram loss, and the dynamic-join latency of an extra display (§2.3).
func exp3Init(quick bool) error {
	trials := 20
	if quick {
		trials = 5
	}

	fmt.Println("channel establishment latency (subscriber registers after publisher):")
	tbl := metrics.NewTable("subscriber entries", "mean (ms)", "max (ms)")
	for _, n := range []int{1, 4, 8, 16} {
		var lat metrics.Summary
		for trial := 0; trial < trials; trial++ {
			if err := establishTrial(n, 0, &lat); err != nil {
				return err
			}
		}
		tbl.AddRow(n, lat.Mean()*1000, lat.Max()*1000)
	}
	fmt.Print(tbl.String())

	fmt.Println("\nconvergence under broadcast datagram loss (8 entries):")
	tbl2 := metrics.NewTable("loss %", "mean (ms)", "max (ms)")
	for _, loss := range []float64{0, 0.2, 0.5} {
		var lat metrics.Summary
		for trial := 0; trial < trials; trial++ {
			if err := establishTrial(8, loss, &lat); err != nil {
				return err
			}
		}
		tbl2.AddRow(loss*100, lat.Mean()*1000, lat.Max()*1000)
	}
	fmt.Print(tbl2.String())
	return nil
}

// establishTrial creates one publisher node and one subscriber node with n
// class entries and records per-entry establishment latency.
func establishTrial(n int, loss float64, lat *metrics.Summary) error {
	lan := transport.NewMemLAN(transport.WithLoss(loss), transport.WithSeed(time.Now().UnixNano()))
	pubNode, err := cb.New(lan, "pub-pc", fastCB())
	if err != nil {
		return err
	}
	defer pubNode.Close()
	for i := 0; i < n; i++ {
		if _, err := pubNode.PublishObjectClass("p", fmt.Sprintf("Class%d", i)); err != nil {
			return err
		}
	}
	subNode, err := cb.New(lan, "sub-pc", fastCB())
	if err != nil {
		return err
	}
	defer subNode.Close()
	subs := make([]*cb.Subscription, n)
	for i := range subs {
		s, err := subNode.SubscribeObjectClass("s", fmt.Sprintf("Class%d", i))
		if err != nil {
			return err
		}
		subs[i] = s
	}
	for i, s := range subs {
		if !s.WaitMatched(20 * time.Second) {
			return fmt.Errorf("entry %d never matched (loss %.0f%%)", i, loss*100)
		}
	}
	// The backbone recorded per-entry latency in its stats.
	st := subNode.Stats()
	lat.Observe(st.EstablishLatency.Max())
	return nil
}
