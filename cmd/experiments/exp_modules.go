package main

import (
	"fmt"
	"math"
	"time"

	"codsim/internal/collision"
	"codsim/internal/crane"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/metrics"
	"codsim/internal/motion"
	"codsim/internal/scenario"
	"codsim/internal/terrain"
	"codsim/internal/trace"
)

// exp4Motion characterizes the Stewart platform controller (§3.4): IK leg
// solutions for canonical poses, the washout response to a sustained
// acceleration, and the engine-vibration amplitude.
func exp4Motion(quick bool) error {
	geo := motion.DefaultGeometry()

	fmt.Println("inverse kinematics: leg lengths (m) for canonical poses:")
	tbl := metrics.NewTable("pose", "leg1", "leg2", "leg3", "leg4", "leg5", "leg6")
	poses := []struct {
		name string
		p    motion.Pose
	}{
		{"home", motion.Pose{}},
		{"heave +0.08", motion.Pose{Heave: 0.08}},
		{"pitch +5°", motion.Pose{Pitch: mathx.Rad(5)}},
		{"roll +5°", motion.Pose{Roll: mathx.Rad(5)}},
		{"yaw +6°", motion.Pose{Yaw: mathx.Rad(6)}},
		{"combined", motion.Pose{Surge: 0.05, Heave: 0.03, Pitch: mathx.Rad(3), Roll: mathx.Rad(-2)}},
	}
	for _, pc := range poses {
		legs, err := geo.IK(pc.p)
		if err != nil {
			return fmt.Errorf("IK %s: %w", pc.name, err)
		}
		tbl.AddRow(pc.name, legs[0], legs[1], legs[2], legs[3], legs[4], legs[5])
	}
	fmt.Print(tbl.String())

	// Washout step response: sustained 3 m/s² forward acceleration.
	fmt.Println("\nwashout step response (sustained 3 m/s² forward):")
	ctrl, err := motion.NewController(geo, motion.DefaultWashout(), 16, 1)
	if err != nil {
		return err
	}
	const dt = 1.0 / 60
	cue := fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, -3)}
	tbl2 := metrics.NewTable("t (s)", "surge (m)", "tilt pitch (deg)")
	horizon := 12.0
	if quick {
		horizon = 4
	}
	next := 0.0
	var st motion.State
	for t := 0.0; t < horizon; t += dt {
		ctrl.Cue(cue, dt)
		st = ctrl.Step(dt)
		if t >= next {
			tbl2.AddRow(t, st.Pose.Surge, mathx.Deg(st.Pose.Pitch))
			next += horizon / 8
		}
	}
	fmt.Print(tbl2.String())
	fmt.Println("(surge returns toward center while tilt coordination takes over: classical washout)")

	// Vibration amplitude by engine intensity.
	fmt.Println("\nengine vibration (heave rms, m):")
	tbl3 := metrics.NewTable("intensity", "rms heave (m)")
	for _, intensity := range []float64{0, 0.3, 0.6, 1.0} {
		c2, err := motion.NewController(geo, motion.DefaultWashout(), 16, 7)
		if err != nil {
			return err
		}
		var sum float64
		n := 1200
		for i := 0; i < n; i++ {
			c2.Cue(fom.MotionCue{SpecificForce: mathx.V3(0, -9.81, 0), Vibration: intensity}, dt)
			s := c2.Step(dt)
			sum += s.Pose.Heave * s.Pose.Heave
		}
		tbl3.AddRow(intensity, math.Sqrt(sum/float64(n)))
	}
	fmt.Print(tbl3.String())
	return nil
}

// exp5Dynamics measures the hook's inertia-oscillation decay after a boom
// stop (§3.6) and the multi-level collision detection ablation (ref [10]).
func exp5Dynamics(quick bool) error {
	// --- Hook oscillation decay. ---
	hs := make([]float64, 101*101)
	ter, err := terrain.New(101, 101, 2, hs)
	if err != nil {
		return err
	}
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, mathx.V3(100, 0, 100), 0)
	if err != nil {
		return err
	}
	const dt = 1.0 / 60
	// Raise the boom, slew hard for 2 s, release.
	for i := 0; i < 60*5; i++ {
		model.Step(fom.ControlInput{Ignition: true, BoomJoyY: 1}, dt)
	}
	for i := 0; i < 60*2; i++ {
		model.Step(fom.ControlInput{Ignition: true, BoomJoyX: 1}, dt)
	}
	fmt.Println("hook lateral swing amplitude after boom stop (4 s windows):")
	tbl := metrics.NewTable("window (s)", "peak amplitude (m)")
	windows := 6
	if quick {
		windows = 3
	}
	var first, last float64
	for wdx := 0; wdx < windows; wdx++ {
		peak := 0.0
		for i := 0; i < 60*4; i++ {
			model.Step(fom.ControlInput{Ignition: true}, dt)
			st := model.State()
			tip := model.BoomTip()
			lat := math.Hypot(st.HookPos.X-tip.X, st.HookPos.Z-tip.Z)
			if lat > peak {
				peak = lat
			}
		}
		tbl.AddRow(fmt.Sprintf("%d-%d", wdx*4, (wdx+1)*4), peak)
		if wdx == 0 {
			first = peak
		}
		last = peak
	}
	fmt.Print(tbl.String())
	if first > 0 {
		fmt.Printf("decay over %d s: %.1f%% of the initial amplitude remains\n",
			windows*4, last/first*100)
	}

	// --- Multi-level collision ablation. ---
	fmt.Println("\nmulti-level collision detection vs brute force (one FindContacts pass):")
	tbl2 := metrics.NewTable("objects", "multi-level tri-checks", "brute tri-checks", "speedup ×", "ml time (µs)", "brute time (µs)")
	sweep := []int{10, 20, 40, 80}
	if quick {
		sweep = []int{10, 40}
	}
	for _, n := range sweep {
		mlChecks, mlTime := collisionPass(n, false)
		bfChecks, bfTime := collisionPass(n, true)
		speed := float64(bfTime) / float64(mlTime)
		tbl2.AddRow(n, mlChecks, bfChecks, speed,
			float64(mlTime)/1e3, float64(bfTime)/1e3)
	}
	fmt.Print(tbl2.String())
	return nil
}

func collisionPass(objects int, brute bool) (triChecks int64, elapsed time.Duration) {
	w := &collision.World{BruteForce: brute}
	for i := 0; i < objects; i++ {
		o := collision.NewObject(fmt.Sprintf("o%d", i), collision.BoxMesh(0.5, 0.5, 0.5))
		pos := mathx.V3(float64(i%10)*4, 0, float64(i/10)*4)
		if i%10 == 9 { // a few touching pairs so L3 actually runs
			pos.X -= 3.4
		}
		o.SetPose(pos, mathx.QuatIdentity())
		w.Add(o)
	}
	start := time.Now()
	const reps = 20
	for r := 0; r < reps; r++ {
		w.FindContacts()
	}
	return w.Stats().TriChecks / reps, time.Since(start) / reps
}

// exp6Exam reproduces the licensing exam of Fig. 8/9 with the status-window
// stream of Fig. 5: a clean autopilot run and a careless run that drags the
// cargo through the bars.
func exp6Exam(quick bool) error {
	fmt.Println("clean autopilot run:")
	if err := examRun(false, quick); err != nil {
		return err
	}
	fmt.Println("\ncareless run (cargo dragged at bar height):")
	return examRun(true, quick)
}

func examRun(careless bool, quick bool) error {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		return err
	}
	course := scenario.DefaultCourse()
	model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
	if err != nil {
		return err
	}
	cargoPos := course.Circle
	cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
	model.PlaceCargo(cargoPos, course.CargoMass)

	eng := scenario.NewEngine(course, crane.DefaultSpec(), scenario.DefaultScore())
	eng.Start()
	ap := trace.NewAutopilot(course)

	const dt = 1.0 / 60
	tbl := metrics.NewTable("t (s)", "phase", "score", "collisions", "swing°", "luff°", "cable m", "boom m")
	nextLog := 0.0
	logEvery := 10.0
	for simT := 0.0; simT < 600; simT += dt {
		st := model.State()
		scen := eng.State()
		if simT >= nextLog || scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			r := crane.DefaultSpec().StatusReport(st, scen.Score, eng.ExtraAlarms())
			tbl.AddRow(simT, scen.Phase.String(), scen.Score, scen.Collisions,
				r.SwingDeg, r.LuffDeg, r.CableLen, r.BoomLen)
			nextLog += logEvery
		}
		if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
			break
		}
		in := ap.Control(st, scen, dt)
		if careless && scen.Phase == fom.PhaseTraverse {
			// Pay the cable out so the cargo flies at bar height.
			in.HoistJoyY = mathx.Clamp(st.CargoPos.Y-1.2, -1, 1)
		}
		model.Step(in, dt)
		eng.Step(model.State(), dt)
	}
	fmt.Print(tbl.String())
	final := eng.State()
	fmt.Printf("result: %s, score %.1f, %d bar collisions, %.0f s\n",
		final.Phase, final.Score, final.Collisions, final.Elapsed)
	return nil
}
