// Command codvet runs the project-invariant analyzer suite
// (internal/analysis) over the module: determinism, policydecl,
// layering, ctxwait and errwrap — the conventions the simulator's
// correctness leans on, turned into a CI gate.
//
// Usage:
//
//	codvet [-list] [-allowlist] [-run name,name] [packages]
//
// With no package arguments (or "./...") every production package of
// the enclosing module is analyzed. Arguments may be import paths
// ("codsim/internal/dist") or module-relative directories
// ("./internal/dist"). Findings print as file:line:col: message
// (analyzer); any finding exits 1. Allowlisted exceptions live in
// internal/analysis/config.go, each with a written reason; AUDIT.md at
// the repository root is the consolidated record of the initial
// tree-wide run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"codsim/internal/analysis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codvet:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		list      = flag.Bool("list", false, "list the analyzers and exit")
		allowlist = flag.Bool("allowlist", false, "print the active allowlist and exit")
		runNames  = flag.String("run", "", "comma-separated analyzer names to run (default all)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *allowlist {
		for _, e := range analysis.DefaultAllowlist {
			fmt.Printf("%s %s %s\n    reason: %s\n", e.Analyzer, e.Pkg, e.Detail, e.Reason)
		}
		return nil
	}

	analyzers := analysis.All()
	if *runNames != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runNames, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	moduleDir, modulePath, err := analysis.FindModule(wd)
	if err != nil {
		return err
	}

	paths, err := selectPackages(moduleDir, modulePath, flag.Args())
	if err != nil {
		return err
	}

	loader := analysis.NewLoader(analysis.Config{ModulePath: modulePath, ModuleDir: moduleDir})
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := analysis.Run(pkgs, analyzers, loader.Fset(), analysis.DefaultAllowlist)
	if err != nil {
		return err
	}
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(moduleDir, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "codvet: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	return nil
}

// selectPackages resolves the command-line package arguments to import
// paths; no arguments or "./..." selects the whole module, and a
// trailing "/..." selects a subtree ("./cmd/...").
func selectPackages(moduleDir, modulePath string, args []string) ([]string, error) {
	all := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "all" {
			all = true
		}
	}
	if all {
		return analysis.ModulePackages(moduleDir, modulePath)
	}
	var paths []string
	for _, a := range args {
		subtree := false
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			subtree = true
			a = rest
		}
		switch {
		case strings.HasPrefix(a, "./") || a == ".":
			rel := filepath.ToSlash(strings.TrimPrefix(a, "./"))
			if rel == "" || rel == "." {
				a = modulePath
			} else {
				a = modulePath + "/" + rel
			}
		case a == modulePath || strings.HasPrefix(a, modulePath+"/"):
			// already an import path
		default:
			return nil, fmt.Errorf("package %q is outside module %s", a, modulePath)
		}
		if subtree {
			mod, err := analysis.ModulePackages(moduleDir, modulePath)
			if err != nil {
				return nil, err
			}
			n := len(paths)
			for _, p := range mod {
				if p == a || strings.HasPrefix(p, a+"/") {
					paths = append(paths, p)
				}
			}
			if len(paths) == n {
				return nil, fmt.Errorf("no packages under %s", a)
			}
			continue
		}
		paths = append(paths, a)
	}
	return paths, nil
}
