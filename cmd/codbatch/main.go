// Command codbatch runs batches of training scenarios at cluster scale —
// locally or sharded across worker hosts — and reports scores, pass rates
// and percentile analytics: one full COD federation (or headless coupling)
// per scenario run.
//
// Local batch (the default): N runs in parallel inside this process.
//
//	codbatch [-scenarios all|name,...] [-specs dir] [-repeat N] [-headless]
//	         [-parallel N] [-timescale 15] [-timeout 3m] [-strict]
//	         [-skill novice] [-jitter 0.3]
//	         [-out results.jsonl] [-compare old.jsonl]
//
// Distributed batch: start one worker per host, then one coordinator that
// shards the same work list over them via the dist protocol (UDPLAN
// discovery + TCP virtual channels on a shared segment):
//
//	host1$ codbatch -serve -lan 192.168.0.10:47700 -name host1 -headless
//	host2$ codbatch -serve -lan 192.168.0.10:47700 -name host2 -headless
//	any$   codbatch -coordinator host1,host2 -lan 192.168.0.10:47700 \
//	           -repeat 5 -headless -out results.jsonl
//
// Procedural campaign: -campaign seed:count generates, certifies and
// dispatches count scenarios instead of the library — locally or via
// -coordinator. The certification stream prefetches ahead of dispatch;
// -campaign-cache file persists dry-run verdicts so reruns fly none;
// -lazy-certify defers certification to each job's own run (conflicts
// with -strict); -campaign-wind/-night/-two/-tandem, -campaign-mass
// lo:hi, -campaign-gates lo:hi and -campaign-bars n tune the generator
// and are folded into the campaign key:
//
//	codbatch -campaign 42:1000 -headless -strict -campaign-cache verdicts.jsonl
//	codbatch -campaign 42:50 -list
//
// -out persists one JSON-lines record per run; -compare old.jsonl diffs
// the fresh results against a previous sweep and exits nonzero on
// regressions (lower pass rate, or p50 score drops). -specs dir loads
// scenario JSON files instead of the built-in library. -cpuprofile and
// -memprofile write pprof profiles on clean exit.
//
// -obs addr serves the live telemetry plane in any mode (/metrics
// Prometheus exposition, /healthz, /debug/tablez backbone tables,
// /debug/pprof), switches the dist layer to structured slog lines on
// stderr, and records per-job trace-span phase latencies; ":0" picks a
// free port and prints it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"codsim/cod"
	"codsim/internal/dist"
	"codsim/internal/obs"
	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
	"codsim/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codbatch:", err)
		os.Exit(1)
	}
}

func run() error {
	defaultParams := gen.DefaultParams()
	var (
		names     = flag.String("scenarios", "all", `comma-separated scenario names, or "all"`)
		specsDir  = flag.String("specs", "", "load scenario JSON files from this directory instead of the built-in library")
		parallel  = flag.Int("parallel", 0, "concurrent runs (0 = auto); worker slots in -serve mode")
		timescale = flag.Float64("timescale", 15, "simulation speed multiplier per federation")
		repeat    = flag.Int("repeat", 1, "run the selection N times (load/regression sweeps)")
		timeout   = flag.Duration("timeout", 3*time.Minute, "per-run cap: wall clock for federations, simulation seconds for -headless (0 = scenario default)")
		headless  = flag.Bool("headless", false, "run without the federation (direct coupling)")
		list      = flag.Bool("list", false, "list the scenario selection and exit")
		strict    = flag.Bool("strict", false, "exit nonzero unless every run passes")
		displays  = flag.Int("displays", 3, "surround-view displays per federation")
		polygons  = flag.Int("polygons", 400, "scene polygon budget per display")
		outPath   = flag.String("out", "", "persist per-run records to this JSON-lines file")
		compare   = flag.String("compare", "", "diff results against this JSON-lines file; regressions exit nonzero")
		serve     = flag.Bool("serve", false, "worker mode: serve batch jobs to a coordinator on the segment")
		coordAt   = flag.String("coordinator", "", "coordinator mode: comma-separated worker names to shard over")
		lanAddr   = flag.String("lan", "127.0.0.1:47700", "UDPLAN segment (host:basePort) for -serve/-coordinator")
		name      = flag.String("name", "", "worker name on the segment (default worker-<pid>)")
		campaign  = flag.String("campaign", "", "procedural campaign seed:count — generate, oracle-certify and dispatch that many scenarios instead of a library selection")
		campCache = flag.String("campaign-cache", "", "persistent oracle-verdict cache (append-only JSONL): re-running a campaign replays cached verdicts instead of re-flying dry-runs")
		lazyCert  = flag.Bool("lazy-certify", false, "campaign mode: skip the pre-dispatch dry-run (static check and cached verdicts only) and let each job's own run be the verdict; conflicts with -strict")
		campWind  = flag.Float64("campaign-wind", defaultParams.WindProb, "campaign knob: probability of a wind regime (0..1)")
		campNight = flag.Float64("campaign-night", defaultParams.NightProb, "campaign knob: probability of low visibility (0..1)")
		campTwo   = flag.Float64("campaign-two", defaultParams.TwoCraneProb, "campaign knob: archetype weight — probability of a two-crane candidate (0..1)")
		campTand  = flag.Float64("campaign-tandem", defaultParams.TandemProb, "campaign knob: archetype weight — probability a two-crane candidate is a shared tandem lift rather than twin yards (0..1)")
		campMass  = flag.String("campaign-mass", "", "campaign knob: single-hook cargo mass band lo:hi in kg (default 1000:2600)")
		campGates = flag.String("campaign-gates", "", "campaign knob: traverse gate count band lo:hi (default 3:6)")
		campBars  = flag.Int("campaign-bars", defaultParams.MaxBars, "campaign knob: max obstruction bars along a carry")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file on clean exit")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file on clean exit")
		skillName = flag.String("skill", "", `autopilot skill preset (expert, intermediate, novice; "" = expert)`)
		jitter    = flag.Float64("jitter", 0, "per-run skill jitter spread (0..1): each run scales the preset's lag/overshoot/slack by a factor in [1-j, 1+j] drawn from its job seed")
		trendDir  = flag.String("trend", "", "report pass-rate/p50-score trends across every *.jsonl sweep in this directory and exit")
		obsAddr   = flag.String("obs", "", "serve the telemetry plane (/metrics, /healthz, /debug/tablez, /debug/pprof) on this address (e.g. :9090, :0 = ephemeral); empty = off")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer writeHeapProfile(*memProf)
	}

	if *trendDir != "" {
		sweeps, err := dist.LoadSweepDir(*trendDir)
		if err != nil {
			return err
		}
		dist.WriteTrend(os.Stdout, sweeps)
		return nil
	}

	skill, err := trace.SkillByName(*skillName)
	if err != nil {
		return err
	}
	if *jitter < 0 || *jitter > 1 {
		return fmt.Errorf("-jitter %v out of range [0, 1]", *jitter)
	}
	skill.Jitter = *jitter

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	role := "local"
	switch {
	case *serve:
		role = "worker"
	case *coordAt != "":
		role = "coordinator"
	}
	plane, err := startObs(*obsAddr, role)
	if err != nil {
		return err
	}
	defer plane.Close()

	// In headless mode Timeout is a simulation-time cap, where the 3 m
	// wall-clock default would cut scenarios off mid-course; only an
	// explicit -timeout carries over.
	if *headless && !flagSet("timeout") {
		*timeout = 0
	}

	if *campaign != "" {
		seed, count, err := parseCampaign(*campaign)
		if err != nil {
			return err
		}
		switch {
		case *specsDir != "" || flagSet("scenarios") || flagSet("repeat"):
			return errors.New("-campaign generates its own work list; it conflicts with -specs, -scenarios and -repeat")
		case *serve:
			return errors.New("-campaign is a coordinator/local mode; workers just -serve")
		case *lazyCert && *strict:
			return errors.New("-lazy-certify skips pre-dispatch certification; it conflicts with -strict")
		}
		params, err := campaignParams(defaultParams,
			*campWind, *campNight, *campTwo, *campTand, *campMass, *campGates, *campBars)
		if err != nil {
			return err
		}
		cr := campaignRun{seed: seed, count: count, params: params,
			cachePath: *campCache, lazy: *lazyCert}
		if *list {
			return listCampaign(cr)
		}
		batch := sim.BatchConfig{
			Base: sim.Config{
				TimeScale: *timescale,
				Displays:  *displays,
				Width:     96,
				Height:    72,
				Polygons:  *polygons,
			},
			Timeout:  *timeout,
			Headless: *headless,
			Skill:    skill,
		}
		if plane != nil {
			batch.Log = plane.Log()
		}
		if *coordAt != "" {
			return runCampaignCoordinator(ctx, plane, *lanAddr, *coordAt, cr,
				*outPath, *compare, *strict)
		}
		return runCampaignLocal(ctx, plane, cr, *parallel, batch,
			*outPath, *compare, *strict)
	}

	selection, err := selectSpecs(*specsDir, *names)
	if err != nil {
		return err
	}

	if *list {
		for _, s := range selection {
			fmt.Printf("%-18s %-34s %d phases%s\n", s.Name, s.Title, len(s.Phases), describe(s))
		}
		return nil
	}

	batch := sim.BatchConfig{
		Base: sim.Config{
			TimeScale: *timescale,
			Displays:  *displays,
			Width:     96,
			Height:    72,
			Polygons:  *polygons,
		},
		Parallel: *parallel,
		Timeout:  *timeout,
		Headless: *headless,
		Skill:    skill,
	}
	if plane != nil {
		batch.Log = plane.Log()
	}

	switch {
	case *serve && *coordAt != "":
		return errors.New("-serve and -coordinator are mutually exclusive")
	case *serve:
		return runWorker(ctx, plane, *lanAddr, *name, *parallel, batch)
	case *coordAt != "":
		return runCoordinator(ctx, plane, *lanAddr, *coordAt, selection, *repeat, *timeout,
			*outPath, *compare, *strict)
	default:
		return runLocal(ctx, selection, *repeat, batch, *outPath, *compare, *strict)
	}
}

// campaignParams applies the -campaign-* knobs over the default sampling
// space. Every knob participates in the campaign key's params hash, so
// two campaigns with different knob settings never collide on a sweep
// label or a cache signature.
func campaignParams(p gen.Params, wind, night, two, tandem float64,
	mass, gates string, bars int) (gen.Params, error) {
	for _, prob := range []struct {
		name string
		v    float64
	}{{"-campaign-wind", wind}, {"-campaign-night", night}, {"-campaign-two", two}, {"-campaign-tandem", tandem}} {
		if prob.v < 0 || prob.v > 1 {
			return p, fmt.Errorf("%s %v out of range [0, 1]", prob.name, prob.v)
		}
	}
	p.WindProb, p.NightProb, p.TwoCraneProb, p.TandemProb = wind, night, two, tandem
	if bars < 0 {
		return p, fmt.Errorf("-campaign-bars %d must be >= 0", bars)
	}
	p.MaxBars = bars
	if mass != "" {
		lo, hi, err := parseBand(mass)
		if err != nil || lo <= 0 || hi < lo {
			return p, fmt.Errorf("-campaign-mass wants lo:hi kg with 0 < lo <= hi, got %q", mass)
		}
		p.MinCargoMass, p.MaxCargoMass = lo, hi
		if p.TandemMassCap < hi {
			p.TandemMassCap = hi
		}
	}
	if gates != "" {
		lo, hi, err := parseBand(gates)
		if err != nil || lo < 1 || hi < lo || lo != float64(int(lo)) || hi != float64(int(hi)) {
			return p, fmt.Errorf("-campaign-gates wants integer lo:hi with 1 <= lo <= hi, got %q", gates)
		}
		p.MinGates, p.MaxGates = int(lo), int(hi)
	}
	return p, nil
}

// parseBand splits a "lo:hi" numeric band.
func parseBand(arg string) (lo, hi float64, err error) {
	l, h, ok := strings.Cut(arg, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want lo:hi, got %q", arg)
	}
	if lo, err = strconv.ParseFloat(strings.TrimSpace(l), 64); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.ParseFloat(strings.TrimSpace(h), 64); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// writeHeapProfile snapshots the heap into path after a final GC, for
// -memprofile on clean exit.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codbatch: -memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "codbatch: -memprofile:", err)
	}
}

// startObs boots the telemetry plane when -obs is set; a nil plane (flag
// unset) is safe everywhere downstream — every method no-ops.
func startObs(addr, role string) (*obs.Plane, error) {
	if addr == "" {
		return nil, nil
	}
	plane := obs.NewPlane(role, os.Stderr, 0)
	bound, err := plane.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("obs: telemetry plane on http://%s/metrics\n", bound)
	return plane, nil
}

// runLocal is the classic in-process batch, now with record persistence
// and regression compare.
func runLocal(ctx context.Context, selection []scenario.Spec, repeat int,
	batch sim.BatchConfig, outPath, compare string, strict bool) error {
	jobs := dist.JobsFor(selection, repeat)
	specs := make([]scenario.Spec, len(jobs))
	batch.Seeds = make([]int64, len(jobs))
	for i, j := range jobs {
		specs[i] = j.Spec
		// The same derivation a dist worker uses, so local and sharded
		// sweeps of one job fly the same jittered trainee.
		batch.Seeds[i] = j.SkillSeed()
	}

	start := time.Now()
	results := sim.RunBatch(ctx, specs, batch)
	fmt.Printf("ran %d scenario runs in %.1fs wall\n", len(results), time.Since(start).Seconds())
	sim.WriteBatchReport(os.Stdout, results)

	if err := ctx.Err(); err != nil {
		// Interrupted mid-sweep: persist only the runs that really
		// finished (matching the coordinator path) and fail — the
		// canceled placeholders must not overwrite a good baseline.
		var done []dist.Record
		for i, res := range results {
			if !errors.Is(res.Err, context.Canceled) {
				done = append(done, dist.NewRecord(jobs[i], res, "local"))
			}
		}
		if outPath != "" && len(done) > 0 {
			_ = dist.SaveRecords(outPath, done)
		}
		return fmt.Errorf("sweep aborted with %d/%d records: %w", len(done), len(jobs), err)
	}
	recs := make([]dist.Record, len(results))
	for i, res := range results {
		recs[i] = dist.NewRecord(jobs[i], res, "local")
	}
	return finishSweep(recs, outPath, compare, strict)
}

// runWorker serves this host's slots to whatever coordinator shows up on
// the segment, until interrupted.
func runWorker(ctx context.Context, plane *obs.Plane, lanAddr, name string, slots int, batch sim.BatchConfig) error {
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if slots <= 0 {
		if batch.Headless {
			slots = runtime.NumCPU()
		} else {
			slots = max(1, runtime.NumCPU()/4)
		}
	}
	node, err := cod.NewNode(name+"-node", cod.WithUDP(lanAddr))
	if err != nil {
		return err
	}
	defer node.Close()
	plane.AddNode(name+"-node", node)
	wcfg := dist.WorkerConfig{
		Name:  name,
		Slots: slots,
		Batch: batch,
	}
	if plane != nil {
		wcfg.Log = plane.Log()
		wcfg.Spans = plane.SpanSink()
	}
	w, err := dist.NewWorker(node, wcfg)
	if err != nil {
		return err
	}
	defer w.Close()
	plane.AddDispatch(w.Sample)

	mode := "federation"
	if batch.Headless {
		mode = "headless"
	}
	fmt.Printf("worker %s serving %d %s slots on %s (Ctrl-C to stop)\n",
		name, slots, mode, lanAddr)
	if err := w.Run(ctx); !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// runCoordinator shards the work list over the named workers and reports
// the merged results.
func runCoordinator(ctx context.Context, plane *obs.Plane, lanAddr, workerList string,
	selection []scenario.Spec, repeat int, timeout time.Duration,
	outPath, compare string, strict bool) error {
	var workers []string
	for _, w := range strings.Split(workerList, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		return errors.New("-coordinator needs at least one worker name")
	}

	node, err := cod.NewNode("codbatch-coordinator", cod.WithUDP(lanAddr))
	if err != nil {
		return err
	}
	defer node.Close()
	// Give every run its per-run budget plus generous dispatch slack
	// before declaring the attempt lost; workers run what they claim
	// immediately, so queue wait does not count against this. timeout 0
	// means "scenario default" (up to 120 s of federation wall clock),
	// so substitute a budget at least that large.
	budget := timeout
	if budget <= 0 {
		budget = 2 * time.Minute
	}
	jobTimeout := 2*budget + time.Minute
	plane.AddNode("codbatch-coordinator", node)
	ccfg := dist.CoordinatorConfig{JobTimeout: jobTimeout}
	if plane != nil {
		ccfg.Log = plane.Log()
		ccfg.Spans = plane.SpanSink()
	}
	coord, err := dist.NewCoordinator(node, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	plane.AddDispatch(coord.Sample)

	fmt.Printf("waiting for workers %s on %s\n", strings.Join(workers, ", "), lanAddr)
	if err := coord.WaitWorkers(ctx, workers); err != nil {
		return err
	}

	jobs := dist.JobsFor(selection, repeat)
	fmt.Printf("dispatching %d jobs (%d scenarios × %d) to %d workers\n",
		len(jobs), len(selection), repeat, len(workers))
	start := time.Now()
	recs, err := coord.Run(ctx, jobs)
	if err != nil {
		// Persist whatever completed before reporting the failure.
		if outPath != "" && len(recs) > 0 {
			_ = dist.SaveRecords(outPath, recs)
		}
		return fmt.Errorf("sweep aborted with %d/%d records: %w", len(recs), len(jobs), err)
	}
	fmt.Printf("completed %d jobs in %.1fs wall\n", len(recs), time.Since(start).Seconds())
	return finishSweep(recs, outPath, compare, strict)
}

// finishSweep is the shared tail of every batch mode: aggregate report,
// JSONL persistence, regression compare, strict verdict.
func finishSweep(recs []dist.Record, outPath, compare string, strict bool) error {
	dist.WriteReport(os.Stdout, dist.BuildReport(recs))
	if outPath != "" {
		if err := dist.SaveRecords(outPath, recs); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(recs), outPath)
	}
	if compare != "" {
		old, err := dist.LoadRecords(compare)
		if err != nil {
			return err
		}
		if n := dist.WriteCompare(os.Stdout, old, recs); n > 0 {
			return fmt.Errorf("%d scenario(s) regressed vs %s", n, compare)
		}
	}
	if strict {
		for _, r := range recs {
			if !r.Passed {
				return fmt.Errorf("job %d (%s) did not pass", r.Job, r.Scenario)
			}
		}
	}
	return nil
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) { set = set || f.Name == name })
	return set
}

// selectSpecs resolves the scenario source (-specs dir or the built-in
// library) and the -scenarios name filter.
func selectSpecs(specsDir, names string) ([]scenario.Spec, error) {
	source := scenario.Library()
	if specsDir != "" {
		var err error
		if source, err = scenario.LoadSpecDir(specsDir); err != nil {
			return nil, err
		}
	}
	if names == "all" || names == "" {
		return source, nil
	}
	byName := make(map[string]scenario.Spec, len(source))
	for _, s := range source {
		byName[s.Name] = s
	}
	var specs []scenario.Spec
	for _, name := range strings.Split(names, ",") {
		s, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q in this selection", strings.TrimSpace(name))
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// describe summarizes a spec's special conditions for -list.
func describe(s scenario.Spec) string {
	var parts []string
	if !s.Wind.IsZero() {
		parts = append(parts, "wind")
	}
	if s.Visibility > 0 && s.Visibility < 1 {
		parts = append(parts, "night")
	}
	if n := s.CraneCount(); n > 1 {
		parts = append(parts, fmt.Sprintf("%d cranes", n))
	}
	for _, c := range s.Cargos {
		if c.HooksNeeded() > 1 {
			parts = append(parts, "tandem")
			break
		}
	}
	if len(s.Cargos) > 1 {
		parts = append(parts, fmt.Sprintf("%d cargos", len(s.Cargos)))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
