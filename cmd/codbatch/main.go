// Command codbatch runs a batch of training scenarios at cluster scale and
// prints a score/pass-rate report: one full COD federation per scenario —
// displays, synchronization server, dashboard, motion, instructor and
// simulation PCs on a private in-memory LAN — N federations in parallel,
// each driven by the autopilot trainee.
//
// Usage:
//
//	codbatch [-scenarios all|name,name,...] [-parallel N] [-timescale 15]
//	         [-repeat N] [-timeout 3m] [-headless] [-list] [-strict]
//
// -headless skips the federation and couples dynamics, scenario engine and
// autopilot directly — the fast path for smoke runs and CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"codsim/internal/scenario"
	"codsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "codbatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		names     = flag.String("scenarios", "all", `comma-separated scenario names, or "all"`)
		parallel  = flag.Int("parallel", 0, "concurrent federations (0 = auto)")
		timescale = flag.Float64("timescale", 15, "simulation speed multiplier per federation")
		repeat    = flag.Int("repeat", 1, "run the selection N times (load/regression sweeps)")
		timeout   = flag.Duration("timeout", 3*time.Minute, "wall-clock limit per federation run (headless runs are budgeted in sim time)")
		headless  = flag.Bool("headless", false, "run without the federation (direct coupling)")
		list      = flag.Bool("list", false, "list the shipped scenario library and exit")
		strict    = flag.Bool("strict", false, "exit nonzero unless every scenario passes")
		displays  = flag.Int("displays", 3, "surround-view displays per federation")
		polygons  = flag.Int("polygons", 400, "scene polygon budget per display")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.Library() {
			extras := describe(s)
			fmt.Printf("%-18s %-34s %d phases%s\n", s.Name, s.Title, len(s.Phases), extras)
		}
		return nil
	}

	selection, err := selectSpecs(*names)
	if err != nil {
		return err
	}
	var specs []scenario.Spec
	for i := 0; i < *repeat; i++ {
		specs = append(specs, selection...)
	}

	start := time.Now()
	results := sim.RunBatch(specs, sim.BatchConfig{
		Base: sim.Config{
			TimeScale: *timescale,
			Displays:  *displays,
			Width:     96,
			Height:    72,
			Polygons:  *polygons,
		},
		Parallel: *parallel,
		Timeout:  *timeout,
		Headless: *headless,
	})
	fmt.Printf("ran %d scenario federations in %.1fs wall\n", len(results), time.Since(start).Seconds())
	sim.WriteBatchReport(os.Stdout, results)

	if *strict {
		for _, r := range results {
			if !r.Passed {
				return fmt.Errorf("scenario %s did not pass", r.Scenario)
			}
		}
	}
	return nil
}

// selectSpecs resolves the -scenarios flag against the library.
func selectSpecs(names string) ([]scenario.Spec, error) {
	if names == "all" || names == "" {
		return scenario.Library(), nil
	}
	var specs []scenario.Spec
	for _, name := range strings.Split(names, ",") {
		s, err := scenario.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// describe summarizes a spec's special conditions for -list.
func describe(s scenario.Spec) string {
	var parts []string
	if !s.Wind.IsZero() {
		parts = append(parts, "wind")
	}
	if s.Visibility > 0 && s.Visibility < 1 {
		parts = append(parts, "night")
	}
	if len(s.Cargos) > 1 {
		parts = append(parts, fmt.Sprintf("%d cargos", len(s.Cargos)))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
