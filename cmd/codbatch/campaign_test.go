package main

import (
	"bytes"
	"context"
	"testing"

	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
)

func TestParseCampaign(t *testing.T) {
	seed, count, err := parseCampaign("42:1000")
	if err != nil || seed != 42 || count != 1000 {
		t.Fatalf("42:1000 -> %d, %d, %v", seed, count, err)
	}
	if _, _, err := parseCampaign("-7: 25"); err != nil {
		t.Fatalf("negative seed with spaces: %v", err)
	}
	for _, bad := range []string{"", "7", "7:", ":5", "7:0", "7:-2", "x:5", "7:y"} {
		if _, _, err := parseCampaign(bad); err == nil {
			t.Errorf("parseCampaign(%q) accepted", bad)
		}
	}
}

// Re-running the same seed+params must reproduce the identical job list —
// IDs, candidate seeds, and spec bytes — even with the real oracle
// vetoing candidates in between.
func TestReproduceCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("expert dry-runs in -short")
	}
	ctx := context.Background()
	const count = 8
	a, sa, err := reproduceCampaign(ctx, 42, count, gen.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := reproduceCampaign(ctx, 42, count, gen.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("tallies differ: %+v vs %+v", sa, sb)
	}
	if len(a) != count || len(b) != count {
		t.Fatalf("job lists %d/%d, want %d", len(a), len(b), count)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed {
			t.Fatalf("job %d: (%d,%d) vs (%d,%d)", i, a[i].ID, a[i].Seed, b[i].ID, b[i].Seed)
		}
		ja, err := scenario.MarshalSpec(a[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		jb, _ := scenario.MarshalSpec(b[i].Spec)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("job %d: spec bytes differ between reruns", i)
		}
	}
}
