package main

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
)

func TestParseCampaign(t *testing.T) {
	seed, count, err := parseCampaign("42:1000")
	if err != nil || seed != 42 || count != 1000 {
		t.Fatalf("42:1000 -> %d, %d, %v", seed, count, err)
	}
	if _, _, err := parseCampaign("-7: 25"); err != nil {
		t.Fatalf("negative seed with spaces: %v", err)
	}
	for _, bad := range []string{"", "7", "7:", ":5", "7:0", "7:-2", "x:5", "7:y"} {
		if _, _, err := parseCampaign(bad); err == nil {
			t.Errorf("parseCampaign(%q) accepted", bad)
		}
	}
}

// Re-running the same seed+params must reproduce the identical job list —
// IDs, candidate seeds, and spec bytes — even with the real oracle
// vetoing candidates in between.
func TestReproduceCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("expert dry-runs in -short")
	}
	ctx := context.Background()
	const count = 8
	a, sa, err := reproduceCampaign(ctx, 42, count, gen.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := reproduceCampaign(ctx, 42, count, gen.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("tallies differ: %+v vs %+v", sa, sb)
	}
	if len(a) != count || len(b) != count {
		t.Fatalf("job lists %d/%d, want %d", len(a), len(b), count)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed {
			t.Fatalf("job %d: (%d,%d) vs (%d,%d)", i, a[i].ID, a[i].Seed, b[i].ID, b[i].Seed)
		}
		ja, err := scenario.MarshalSpec(a[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		jb, _ := scenario.MarshalSpec(b[i].Spec)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("job %d: spec bytes differ between reruns", i)
		}
	}
}

// A campaign with a verdict cache must produce the byte-identical job
// list cold (flying every dry-run) and warm (replaying every verdict),
// with the warm rerun flying zero live dry-runs — the acceptance bar for
// "re-running a certified campaign costs file reads, not sim time".
func TestCampaignCacheColdWarmIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("expert dry-runs in -short")
	}
	ctx := context.Background()
	cr := campaignRun{
		seed:      42,
		count:     8,
		params:    gen.DefaultParams(),
		cachePath: filepath.Join(t.TempDir(), "verdicts.jsonl"),
	}
	cold, cs, err := replayCampaign(ctx, cr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs.OracleRuns == 0 || cs.CacheHits != 0 {
		t.Fatalf("cold tallies wrong: %+v", cs)
	}
	warm, ws, err := replayCampaign(ctx, cr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ws.OracleRuns != 0 {
		t.Fatalf("warm rerun flew %d live dry-runs, want 0: %+v", ws.OracleRuns, ws)
	}
	if len(cold) != cr.count || len(warm) != cr.count {
		t.Fatalf("job lists %d/%d, want %d", len(cold), len(warm), cr.count)
	}
	for i := range cold {
		if cold[i].ID != warm[i].ID || cold[i].Seed != warm[i].Seed {
			t.Fatalf("job %d: (%d,%d) cold vs (%d,%d) warm", i, cold[i].ID, cold[i].Seed, warm[i].ID, warm[i].Seed)
		}
		jc, err := scenario.MarshalSpec(cold[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		jw, _ := scenario.MarshalSpec(warm[i].Spec)
		if !bytes.Equal(jc, jw) {
			t.Fatalf("job %d: spec bytes differ cold vs warm", i)
		}
	}
}

// The campaign param knobs must land in gen.Params, shift the campaign
// key, and reject out-of-range values.
func TestCampaignParams(t *testing.T) {
	base := gen.DefaultParams()
	p, err := campaignParams(base, 0.9, 0.1, 0.2, 0.3, "500:2000", "2:5", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.WindProb != 0.9 || p.NightProb != 0.1 || p.TwoCraneProb != 0.2 || p.TandemProb != 0.3 {
		t.Fatalf("probabilities not applied: %+v", p)
	}
	if p.MinCargoMass != 500 || p.MaxCargoMass != 2000 || p.TandemMassCap < 2000 {
		t.Fatalf("mass band not applied: %+v", p)
	}
	if p.MinGates != 2 || p.MaxGates != 5 || p.MaxBars != 4 {
		t.Fatalf("gates/bars not applied: %+v", p)
	}
	if gen.Key(7, 10, base) == gen.Key(7, 10, p) {
		t.Fatal("campaign key ignores the param knobs")
	}

	type bad struct {
		wind, night, two, tandem float64
		mass, gates              string
		bars                     int
	}
	for _, b := range []bad{
		{wind: 1.5}, {night: -0.1}, {two: 2}, {tandem: -1},
		{mass: "0:100"}, {mass: "200:100"}, {mass: "junk"},
		{gates: "0:3"}, {gates: "3:2"}, {gates: "1.5:3"}, {gates: "junk"},
		{bars: -1},
	} {
		if _, err := campaignParams(base, b.wind, b.night, b.two, b.tandem, b.mass, b.gates, b.bars); err == nil {
			t.Errorf("campaignParams accepted %+v", b)
		}
	}
}
