package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/dist"
	"codsim/internal/obs"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
)

// parseCampaign splits the -campaign argument: "seed:count".
func parseCampaign(arg string) (seed int64, count int, err error) {
	s, c, ok := strings.Cut(arg, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-campaign wants seed:count, got %q", arg)
	}
	if seed, err = strconv.ParseInt(strings.TrimSpace(s), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-campaign seed %q: %w", s, err)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(c)); err != nil {
		return 0, 0, fmt.Errorf("-campaign count %q: %w", c, err)
	}
	if count <= 0 {
		return 0, 0, fmt.Errorf("-campaign count %d must be positive", count)
	}
	return seed, count, nil
}

// campaignRun bundles one campaign's identity (seed, count, params) with
// its certification options: the persistent verdict cache path and the
// lazy-certify mode.
type campaignRun struct {
	seed      int64
	count     int
	params    gen.Params
	cachePath string
	lazy      bool
}

// newCampaignStream builds the certified-candidate stream for a campaign:
// prefetching (unless previewing), cache-backed when -campaign-cache is
// set, metered through the obs plane. preview (and lazy) runs certify on
// the free static oracle plus cached dry-run verdicts only — and open the
// cache read-only, so weaker verdicts never poison what strict campaigns
// trust. The cleanup func closes the stream's prefetch task and flushes
// the cache.
func newCampaignStream(plane *obs.Plane, cr campaignRun, width int, preview bool) (*gen.Stream, func(), error) {
	stream := gen.NewStream(cr.seed, cr.params)
	stream.Parallel = width
	stream.Prefetch = !preview
	if cr.lazy || preview {
		stream.Oracle = gen.StaticOnly
	}
	closeCache := func() {}
	if cr.cachePath != "" {
		cache, err := gen.OpenCache(cr.cachePath, cr.seed, cr.params)
		if err != nil {
			return nil, nil, err
		}
		cache.ReadOnly = cr.lazy || preview
		stream.Cache = cache
		closeCache = func() { _ = cache.Close() }
	}
	stream.Hooks = streamHooks(plane)
	return stream, func() { stream.Close(); closeCache() }, nil
}

// streamHooks wires a stream's work into the telemetry plane:
// codsim_gen_candidates_total by verdict, codsim_gen_cache_total by
// hit/miss, and the oracle dry-run wall histogram. gen is a deterministic
// package, so the wall clock is injected from here. A nil plane (no -obs)
// disables the hooks entirely.
func streamHooks(plane *obs.Plane) gen.Hooks {
	if plane == nil {
		return gen.Hooks{}
	}
	candidates := plane.Registry.CounterVec("codsim_gen_candidates_total",
		"Campaign candidates sampled, by final verdict.", "verdict")
	emitted := candidates.With("emitted")
	staticRej := candidates.With("static-reject")
	oracleRej := candidates.With("oracle-reject")
	cacheVec := plane.Registry.CounterVec("codsim_gen_cache_total",
		"Campaign verdict-cache consults, by result.", "result")
	hit, miss := cacheVec.With("hit"), cacheVec.With("miss")
	wall := plane.Registry.Histogram("codsim_gen_oracle_seconds",
		"Wall-clock seconds per live oracle dry-run.", nil)
	start := time.Now()
	return gen.Hooks{
		Clock: func() float64 { return time.Since(start).Seconds() },
		Candidate: func(verdict string) {
			switch verdict {
			case "emitted":
				emitted.Inc()
			case "static-reject":
				staticRej.Inc()
			default:
				oracleRej.Inc()
			}
		},
		CacheResult: func(isHit bool) {
			if isHit {
				hit.Inc()
			} else {
				miss.Inc()
			}
		},
		OracleWall: wall.Observe,
	}
}

// campaignSource feeds a bounded number of certified generated scenarios
// into a coordinator: job ID is the emission index, job Seed the
// generator candidate index, so records and skill jitter stay keyed to
// the reproducible stream.
type campaignSource struct {
	stream  *gen.Stream
	count   int
	emitted int
}

func (cs *campaignSource) Next(ctx context.Context) (dist.Job, bool, error) {
	if cs.emitted >= cs.count {
		return dist.Job{}, false, nil
	}
	spec, cand, err := cs.stream.Next(ctx)
	if err != nil {
		return dist.Job{}, false, err
	}
	j := dist.Job{ID: int64(cs.emitted), Seed: cand, Spec: spec}
	cs.emitted++
	return j, true, nil
}

// listCampaign previews the candidate stream without flying anything: the
// free static oracle — plus any cached dry-run verdicts when a
// -campaign-cache is given, so a warmed preview already excludes known
// uncompletable candidates — and rows print instantly. The certified
// campaign dispatches these same candidates minus whatever the dry-run
// oracle vetoes.
func listCampaign(cr campaignRun) error {
	stream, cleanup, err := newCampaignStream(nil, cr, 0, true)
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Printf("campaign %s (pre-oracle preview)\n", gen.Key(cr.seed, cr.count, cr.params))
	for i := 0; i < cr.count; i++ {
		spec, cand, err := stream.Next(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("%4d  cand %-4d %-12s %d crane(s), %d cargo(s)%s\n",
			i, cand, spec.Name, spec.CraneCount(), len(spec.Cargos), describe(spec))
	}
	st := stream.Stats()
	fmt.Printf("%d candidates sampled, %d static rejects\n", st.Candidates, st.StaticRejects)
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("verdict cache: %d hits, %d misses\n", st.CacheHits, st.CacheMisses)
	}
	return nil
}

// campaignSummary prints the generator's tallies after a sweep — the
// acceptance bar is zero uncompletable specs dispatched, so the vetoes
// are reported, not hidden.
func campaignSummary(key string, st gen.Stats, wall time.Duration) {
	fmt.Printf("campaign %s: %d certified jobs from %d candidates (%d static + %d oracle rejects resampled) in %.1fs wall\n",
		key, st.Emitted, st.Candidates, st.StaticRejects, st.OracleRejects, wall.Seconds())
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Printf("verdict cache: %d hits, %d misses, %d live dry-runs\n",
			st.CacheHits, st.CacheMisses, st.OracleRuns)
	}
}

// runCampaignLocal runs a generated campaign on this host, still through
// the dist protocol: an in-process MemLAN federation carries one
// coordinator streaming certified jobs to one worker serving -parallel
// slots. Identical dispatch semantics to the multi-host path — the LAN is
// just memory.
func runCampaignLocal(ctx context.Context, plane *obs.Plane, cr campaignRun,
	slots int, batch sim.BatchConfig, outPath, compare string, strict bool) error {
	if slots <= 0 {
		if batch.Headless {
			slots = runtime.NumCPU()
		} else {
			slots = max(1, runtime.NumCPU()/4)
		}
	}
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()))
	defer fed.Close()

	wnode, err := fed.Node("campaign-worker-node")
	if err != nil {
		return err
	}
	plane.AddNode("campaign-worker-node", wnode)
	wcfg := dist.WorkerConfig{
		Name:  "local",
		Slots: slots,
		Batch: batch,
	}
	if plane != nil {
		wcfg.Log = plane.Log()
		wcfg.Spans = plane.SpanSink()
	}
	worker, err := dist.NewWorker(wnode, wcfg)
	if err != nil {
		return err
	}
	defer worker.Close()
	plane.AddDispatch(worker.Sample)
	wctx, stopWorker := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = worker.Run(wctx)
	}()
	defer wg.Wait()
	defer stopWorker()

	cnode, err := fed.Node("campaign-coordinator-node")
	if err != nil {
		return err
	}
	plane.AddNode("campaign-coordinator-node", cnode)
	ccfg := dist.CoordinatorConfig{}
	if plane != nil {
		ccfg.Log = plane.Log()
		ccfg.Spans = plane.SpanSink()
	}
	coord, err := dist.NewCoordinator(cnode, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	plane.AddDispatch(coord.Sample)
	if err := coord.WaitWorkers(ctx, []string{"local"}); err != nil {
		return err
	}
	return runCampaignSweep(ctx, plane, coord, cr, slots, outPath, compare, strict)
}

// runCampaignCoordinator streams a generated campaign over the segment to
// the named worker hosts.
func runCampaignCoordinator(ctx context.Context, plane *obs.Plane, lanAddr, workerList string,
	cr campaignRun, outPath, compare string, strict bool) error {
	var workers []string
	for _, w := range strings.Split(workerList, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		return errors.New("-coordinator needs at least one worker name")
	}
	node, err := cod.NewNode("codbatch-coordinator", cod.WithUDP(lanAddr))
	if err != nil {
		return err
	}
	defer node.Close()
	plane.AddNode("codbatch-coordinator", node)
	ccfg := dist.CoordinatorConfig{}
	if plane != nil {
		ccfg.Log = plane.Log()
		ccfg.Spans = plane.SpanSink()
	}
	coord, err := dist.NewCoordinator(node, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	plane.AddDispatch(coord.Sample)
	fmt.Printf("waiting for workers %s on %s\n", strings.Join(workers, ", "), lanAddr)
	if err := coord.WaitWorkers(ctx, workers); err != nil {
		return err
	}
	return runCampaignSweep(ctx, plane, coord, cr, runtime.NumCPU(), outPath, compare, strict)
}

// runCampaignSweep is the shared dispatch tail: certified generator
// stream in (prefetching the next batch while the current one
// dispatches), JSONL records and percentile report out.
func runCampaignSweep(ctx context.Context, plane *obs.Plane, coord *dist.Coordinator,
	cr campaignRun, oracleWidth int, outPath, compare string, strict bool) error {
	key := gen.Key(cr.seed, cr.count, cr.params)
	mode := "oracle-certified"
	if cr.lazy {
		mode = "lazy-certified: each job's own run is the verdict"
	}
	fmt.Printf("campaign %s: dispatching %d certified scenarios (window-streamed, %s)\n", key, cr.count, mode)

	stream, cleanup, err := newCampaignStream(plane, cr, oracleWidth, false)
	if err != nil {
		return err
	}
	defer cleanup()
	src := &campaignSource{stream: stream, count: cr.count}
	start := time.Now()
	recs, err := coord.RunStream(ctx, src)
	if err != nil {
		if outPath != "" && len(recs) > 0 {
			_ = dist.SaveRecords(outPath, recs)
		}
		return fmt.Errorf("campaign aborted with %d/%d records: %w", len(recs), cr.count, err)
	}
	campaignSummary(key, stream.Stats(), time.Since(start))
	if outPath == "" {
		fmt.Printf("hint: -out %s.jsonl persists this sweep for -compare/-trend\n", key)
	}
	return finishSweep(recs, outPath, compare, strict)
}

// reproduceCampaign regenerates the certified job list without
// dispatching — the determinism check behind "re-running the same
// seed+params reproduces the identical job list". Used by tests; kept
// here so the CLI and the check cannot drift apart.
func reproduceCampaign(ctx context.Context, seed int64, count int, params gen.Params) ([]dist.Job, gen.Stats, error) {
	return replayCampaign(ctx, campaignRun{seed: seed, count: count, params: params}, 0)
}

// replayCampaign is reproduceCampaign through the full stream
// configuration — cache, prefetch, lazy mode — so cold-vs-warm cache and
// prefetch determinism checks exercise exactly the code path a dispatched
// campaign uses.
func replayCampaign(ctx context.Context, cr campaignRun, width int) ([]dist.Job, gen.Stats, error) {
	stream, cleanup, err := newCampaignStream(nil, cr, width, false)
	if err != nil {
		return nil, gen.Stats{}, err
	}
	defer cleanup()
	src := &campaignSource{stream: stream, count: cr.count}
	var jobs []dist.Job
	for {
		j, ok, err := src.Next(ctx)
		if err != nil || !ok {
			return jobs, stream.Stats(), err
		}
		jobs = append(jobs, j)
	}
}
