package main

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"codsim/cod"
	"codsim/internal/dist"
	"codsim/internal/obs"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
)

// parseCampaign splits the -campaign argument: "seed:count".
func parseCampaign(arg string) (seed int64, count int, err error) {
	s, c, ok := strings.Cut(arg, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-campaign wants seed:count, got %q", arg)
	}
	if seed, err = strconv.ParseInt(strings.TrimSpace(s), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("-campaign seed %q: %w", s, err)
	}
	if count, err = strconv.Atoi(strings.TrimSpace(c)); err != nil {
		return 0, 0, fmt.Errorf("-campaign count %q: %w", c, err)
	}
	if count <= 0 {
		return 0, 0, fmt.Errorf("-campaign count %d must be positive", count)
	}
	return seed, count, nil
}

// campaignSource feeds a bounded number of certified generated scenarios
// into a coordinator: job ID is the emission index, job Seed the
// generator candidate index, so records and skill jitter stay keyed to
// the reproducible stream.
type campaignSource struct {
	stream  *gen.Stream
	count   int
	emitted int
}

func (cs *campaignSource) Next(ctx context.Context) (dist.Job, bool, error) {
	if cs.emitted >= cs.count {
		return dist.Job{}, false, nil
	}
	spec, cand, err := cs.stream.Next(ctx)
	if err != nil {
		return dist.Job{}, false, err
	}
	j := dist.Job{ID: int64(cs.emitted), Seed: cand, Spec: spec}
	cs.emitted++
	return j, true, nil
}

// listCampaign previews the candidate stream without flying anything:
// the free static oracle only, so rows print instantly. The certified
// campaign dispatches these same candidates minus whatever the dry-run
// oracle vetoes.
func listCampaign(seed int64, count int, params gen.Params) error {
	stream := gen.NewStream(seed, params)
	stream.Oracle = gen.StaticOnly
	fmt.Printf("campaign %s (pre-oracle preview)\n", gen.Key(seed, count, params))
	for i := 0; i < count; i++ {
		spec, cand, err := stream.Next(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("%4d  cand %-4d %-12s %d crane(s), %d cargo(s)%s\n",
			i, cand, spec.Name, spec.CraneCount(), len(spec.Cargos), describe(spec))
	}
	st := stream.Stats()
	fmt.Printf("%d candidates sampled, %d static rejects\n", st.Candidates, st.StaticRejects)
	return nil
}

// campaignSummary prints the generator's tallies after a sweep — the
// acceptance bar is zero uncompletable specs dispatched, so the vetoes
// are reported, not hidden.
func campaignSummary(key string, st gen.Stats, wall time.Duration) {
	fmt.Printf("campaign %s: %d certified jobs from %d candidates (%d static + %d oracle rejects resampled) in %.1fs wall\n",
		key, st.Emitted, st.Candidates, st.StaticRejects, st.OracleRejects, wall.Seconds())
}

// runCampaignLocal runs a generated campaign on this host, still through
// the dist protocol: an in-process MemLAN federation carries one
// coordinator streaming certified jobs to one worker serving -parallel
// slots. Identical dispatch semantics to the multi-host path — the LAN is
// just memory.
func runCampaignLocal(ctx context.Context, plane *obs.Plane, seed int64, count int, params gen.Params,
	slots int, batch sim.BatchConfig, outPath, compare string, strict bool) error {
	if slots <= 0 {
		if batch.Headless {
			slots = runtime.NumCPU()
		} else {
			slots = max(1, runtime.NumCPU()/4)
		}
	}
	fed := cod.NewFederation(cod.WithLAN(cod.NewMemLAN()))
	defer fed.Close()

	wnode, err := fed.Node("campaign-worker-node")
	if err != nil {
		return err
	}
	plane.AddNode("campaign-worker-node", wnode)
	wcfg := dist.WorkerConfig{
		Name:  "local",
		Slots: slots,
		Batch: batch,
	}
	if plane != nil {
		wcfg.Log = plane.Log()
		wcfg.Spans = plane.SpanSink()
	}
	worker, err := dist.NewWorker(wnode, wcfg)
	if err != nil {
		return err
	}
	defer worker.Close()
	plane.AddDispatch(worker.Sample)
	wctx, stopWorker := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = worker.Run(wctx)
	}()
	defer wg.Wait()
	defer stopWorker()

	cnode, err := fed.Node("campaign-coordinator-node")
	if err != nil {
		return err
	}
	plane.AddNode("campaign-coordinator-node", cnode)
	ccfg := dist.CoordinatorConfig{}
	if plane != nil {
		ccfg.Log = plane.Log()
		ccfg.Spans = plane.SpanSink()
	}
	coord, err := dist.NewCoordinator(cnode, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	plane.AddDispatch(coord.Sample)
	if err := coord.WaitWorkers(ctx, []string{"local"}); err != nil {
		return err
	}
	return runCampaignSweep(ctx, coord, seed, count, params, slots, outPath, compare, strict)
}

// runCampaignCoordinator streams a generated campaign over the segment to
// the named worker hosts.
func runCampaignCoordinator(ctx context.Context, plane *obs.Plane, lanAddr, workerList string,
	seed int64, count int, params gen.Params, outPath, compare string, strict bool) error {
	var workers []string
	for _, w := range strings.Split(workerList, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		return errors.New("-coordinator needs at least one worker name")
	}
	node, err := cod.NewNode("codbatch-coordinator", cod.WithUDP(lanAddr))
	if err != nil {
		return err
	}
	defer node.Close()
	plane.AddNode("codbatch-coordinator", node)
	ccfg := dist.CoordinatorConfig{}
	if plane != nil {
		ccfg.Log = plane.Log()
		ccfg.Spans = plane.SpanSink()
	}
	coord, err := dist.NewCoordinator(node, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	plane.AddDispatch(coord.Sample)
	fmt.Printf("waiting for workers %s on %s\n", strings.Join(workers, ", "), lanAddr)
	if err := coord.WaitWorkers(ctx, workers); err != nil {
		return err
	}
	return runCampaignSweep(ctx, coord, seed, count, params, runtime.NumCPU(), outPath, compare, strict)
}

// runCampaignSweep is the shared dispatch tail: certified generator
// stream in, JSONL records and percentile report out.
func runCampaignSweep(ctx context.Context, coord *dist.Coordinator,
	seed int64, count int, params gen.Params, oracleWidth int,
	outPath, compare string, strict bool) error {
	key := gen.Key(seed, count, params)
	fmt.Printf("campaign %s: dispatching %d certified scenarios (window-streamed, oracle-certified)\n", key, count)

	stream := gen.NewStream(seed, params)
	stream.Parallel = oracleWidth
	src := &campaignSource{stream: stream, count: count}
	start := time.Now()
	recs, err := coord.RunStream(ctx, src)
	if err != nil {
		if outPath != "" && len(recs) > 0 {
			_ = dist.SaveRecords(outPath, recs)
		}
		return fmt.Errorf("campaign aborted with %d/%d records: %w", len(recs), count, err)
	}
	campaignSummary(key, stream.Stats(), time.Since(start))
	if outPath == "" {
		fmt.Printf("hint: -out %s.jsonl persists this sweep for -compare/-trend\n", key)
	}
	return finishSweep(recs, outPath, compare, strict)
}

// reproduceCampaign regenerates the certified job list without
// dispatching — the determinism check behind "re-running the same
// seed+params reproduces the identical job list". Used by tests; kept
// here so the CLI and the check cannot drift apart.
func reproduceCampaign(ctx context.Context, seed int64, count int, params gen.Params) ([]dist.Job, gen.Stats, error) {
	stream := gen.NewStream(seed, params)
	src := &campaignSource{stream: stream, count: count}
	var jobs []dist.Job
	for {
		j, ok, err := src.Next(ctx)
		if err != nil || !ok {
			return jobs, stream.Stats(), err
		}
		jobs = append(jobs, j)
	}
}
