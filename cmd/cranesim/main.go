// Command cranesim runs the complete mobile crane training simulator on an
// in-process COD cluster: eight virtual computers (three displays, the
// synchronization server, and the dashboard / motion / instructor /
// simulation PCs) communicating through the Communication Backbone, with
// the autopilot standing in for the trainee.
//
// Usage:
//
//	cranesim [-duration 60s] [-timescale 1] [-polygons 3235] [-displays 3]
//	         [-udp] [-quiet]
//
// With -udp the cluster runs over real UDP/TCP loopback sockets instead of
// the in-memory LAN.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codsim/cod"
	"codsim/internal/audio"
	"codsim/internal/fom"
	"codsim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cranesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration  = flag.Duration("duration", 60*time.Second, "how long to run (wall time)")
		timescale = flag.Float64("timescale", 1, "simulation speed multiplier")
		polygons  = flag.Int("polygons", 3235, "scene polygon budget (paper: 3235)")
		displays  = flag.Int("displays", 3, "number of surround-view displays")
		width     = flag.Int("width", 640, "display framebuffer width")
		height    = flag.Int("height", 480, "display framebuffer height")
		useUDP    = flag.Bool("udp", false, "use real UDP/TCP loopback sockets")
		quiet     = flag.Bool("quiet", false, "suppress the live status window")
		wavPath   = flag.String("wav", "", "write the last 20 s of cab audio to this WAV file")
	)
	flag.Parse()

	cfg := sim.Config{
		Displays:  *displays,
		Polygons:  *polygons,
		Width:     *width,
		Height:    *height,
		TimeScale: *timescale,
		Autopilot: true,
		AutoStart: true,
	}
	if *wavPath != "" {
		cfg.CaptureAudioSec = 20
	}
	if *useUDP {
		lan, err := cod.NewUDPLAN("127.0.0.1", 39700, 16)
		if err != nil {
			return err
		}
		cfg.LAN = lan
	}

	cluster, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}
	defer cluster.Stop()

	fmt.Printf("cranesim: %d displays + sync server + 4 module PCs on the COD (%d polygons)\n",
		*displays, *polygons)

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.Now().Add(*duration)
	for now := range ticker.C {
		if err := cluster.Err(); err != nil {
			return err
		}
		s := cluster.ScenarioState()
		if !*quiet {
			fmt.Print("\n", cluster.Monitor().StatusWindow(0))
			sum := cluster.Summary()
			fmt.Printf("| displays fps: ")
			for i, fps := range sum.DisplayFPS {
				if i > 0 {
					fmt.Print(" / ")
				}
				fmt.Printf("%.1f", fps)
			}
			fmt.Printf("   swaps: %d\n", sum.ServerSwaps)
		}
		if s.Phase == fom.PhaseComplete || s.Phase == fom.PhaseFailed {
			fmt.Printf("\nexam finished: %s — score %.1f in %.1f s (sim time)\n",
				s.Phase, s.Score, s.Elapsed)
			break
		}
		if now.After(deadline) {
			fmt.Printf("\ntime up: phase %s, score %.1f\n", s.Phase, s.Score)
			break
		}
	}

	sum := cluster.Summary()
	fmt.Printf("final: swaps=%d evicted=%d audioVoices=%d alarms=%d\n",
		sum.ServerSwaps, sum.Evicted, sum.AudioVoices, len(sum.Alarms))

	if *wavPath != "" {
		pcm := cluster.AudioPCM()
		f, err := os.Create(*wavPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := audio.WriteWAV(f, pcm); err != nil {
			return err
		}
		fmt.Printf("wrote %.1f s of cab audio to %s\n",
			float64(len(pcm))/audio.SampleRate, *wavPath)
	}
	return nil
}
