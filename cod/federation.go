package cod

import (
	"errors"
	"fmt"
	"sync"
)

// ErrFederationClosed reports node creation on a closed federation.
var ErrFederationClosed = errors.New("cod: federation closed")

// Federation groups the nodes of one simulator instance: it hands every
// node the same LAN segment, collects background errors, and tears the
// whole cluster down on one Close. It replaces the hand-rolled
// "slice of backbones plus deferred Closes" pattern of the old examples.
type Federation struct {
	defaults []Option

	mu       sync.Mutex
	base     nodeConfig // defaults resolved once, so all nodes share one LAN
	resolved bool
	nodes    []*Node
	closed   bool
	err      error // first background error

	wg sync.WaitGroup
}

// NewFederation creates an empty federation. The defaults apply to every
// node it creates (before the node's own options); when none of them
// names a transport, the federation shares one in-memory LAN across its
// nodes.
func NewFederation(defaults ...Option) *Federation {
	return &Federation{defaults: defaults}
}

// Node creates a node named name on the federation's segment and tracks
// it for Close. Per-node options override the federation defaults —
// except the segment itself, which the defaults establish exactly once
// (a WithUDP default must not build a fresh LAN per node, or the
// segment's duplicate-name bookkeeping would be lost).
func (f *Federation) Node(name string, opts ...Option) (*Node, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFederationClosed
	}
	if !f.resolved {
		f.resolved = true
		for _, o := range f.defaults {
			o(&f.base)
		}
		if f.base.lan == nil && f.base.lanErr == nil {
			f.base.lan = NewMemLAN()
		}
	}
	c := f.base
	f.mu.Unlock()

	for _, o := range opts {
		o(&c)
	}

	n, err := newNode(name, &c)
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	if f.closed { // raced with Close: don't leak the node
		f.mu.Unlock()
		_ = n.Close()
		return nil, ErrFederationClosed
	}
	f.nodes = append(f.nodes, n)
	f.mu.Unlock()
	return n, nil
}

// Go runs fn on a goroutine of the federation. The first non-nil error
// any such goroutine returns is recorded and reported by Err and Wait —
// the propagation channel for module loops.
func (f *Federation) Go(fn func() error) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		if err := fn(); err != nil {
			f.fail(err)
		}
	}()
}

// fail records the first background error.
func (f *Federation) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Err returns the first background error recorded so far, nil if none.
func (f *Federation) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Wait blocks until every Go goroutine has returned, then reports the
// first background error.
func (f *Federation) Wait() error {
	f.wg.Wait()
	return f.Err()
}

// Nodes returns the federation's live nodes in creation order.
func (f *Federation) Nodes() []*Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Node(nil), f.nodes...)
}

// Close stops every node of the federation (newest first, so late joiners
// release channels before the nodes they discovered), waits for Go
// goroutines, and reports the joined node-close errors plus the first
// background error. Close is idempotent.
func (f *Federation) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return f.Err()
	}
	f.closed = true
	nodes := f.nodes
	f.nodes = nil
	f.mu.Unlock()

	var errs []error
	for i := len(nodes) - 1; i >= 0; i-- {
		if err := nodes[i].Close(); err != nil {
			errs = append(errs, fmt.Errorf("close %s: %w", nodes[i].Name(), err))
		}
	}
	f.wg.Wait()
	if err := f.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
