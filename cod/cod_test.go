package cod_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"codsim/cod"
)

// craneState is the typed quickstart class: every supported field family
// crossing two nodes of one federation.
type craneState struct {
	X, Y, Slew float64
	Frame      int
	EngineOn   bool
	Operator   string
	Loads      []float64
	Tags       []string
}

const waitLong = 10 * time.Second

func ctxLong(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), waitLong)
	t.Cleanup(cancel)
	return ctx
}

// TestTypedRoundTrip proves the acceptance path: typed publish on one
// node, reflect delivery on another, with context-based waiting end to
// end.
func TestTypedRoundTrip(t *testing.T) {
	fed := cod.NewFederation(cod.WithTimers(5*time.Millisecond, 50*time.Millisecond, 25*time.Millisecond))
	defer fed.Close()

	dyn, err := fed.Node("dynamics-pc")
	if err != nil {
		t.Fatal(err)
	}
	vis, err := fed.Node("display-pc")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := cod.Publish[craneState](dyn, "dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cod.Subscribe[craneState](vis, "visual", "CraneState", cod.WithQueue(16))
	if err != nil {
		t.Fatal(err)
	}

	ctx := ctxLong(t)
	if err := sub.WaitMatched(ctx); err != nil {
		t.Fatalf("WaitMatched: %v", err)
	}
	if err := pub.WaitChannels(ctx, 1); err != nil {
		t.Fatalf("WaitChannels: %v", err)
	}

	want := craneState{
		X: 12.5, Y: -3, Slew: 0.7,
		Frame:    99,
		EngineOn: true,
		Operator: "trainee",
		Loads:    []float64{2.25, 4.5},
		Tags:     []string{"hook", "cargo"},
	}
	if err := pub.Update(1.5, want); err != nil {
		t.Fatalf("Update: %v", err)
	}

	r, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if r.Value.X != want.X || r.Value.Frame != want.Frame ||
		r.Value.Operator != want.Operator || !r.Value.EngineOn ||
		len(r.Value.Loads) != 2 || r.Value.Loads[1] != 4.5 ||
		len(r.Value.Tags) != 2 || r.Value.Tags[0] != "hook" {
		t.Fatalf("reflected value mismatch: %+v", r.Value)
	}
	if r.PubNode != "dynamics-pc" || r.PubLP != "dynamics" || r.Time != 1.5 {
		t.Fatalf("reflection metadata mismatch: %+v", r)
	}
}

func TestUpdateNoSubscribers(t *testing.T) {
	fed := cod.NewFederation()
	defer fed.Close()
	n, err := fed.Node("lonely-pc")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cod.Publish[craneState](n, "dynamics", "LonelyState")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(0, craneState{}); !errors.Is(err, cod.ErrNoSubscribers) {
		t.Fatalf("Update with no channels: got %v, want ErrNoSubscribers", err)
	}
	// Once a subscriber matches, the same call succeeds.
	sub, err := cod.Subscribe[craneState](n, "visual", "LonelyState")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WaitMatched(ctxLong(t)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(1, craneState{}); err != nil {
		t.Fatalf("Update with a subscriber: %v", err)
	}
}

func TestNextContextCancel(t *testing.T) {
	fed := cod.NewFederation()
	defer fed.Close()
	n, err := fed.Node("pc")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cod.Subscribe[craneState](n, "visual", "CraneState")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Next block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next after cancel: got %v, want context.Canceled", err)
		}
	case <-time.After(waitLong):
		t.Fatal("Next never returned after cancellation")
	}

	// A closed subscription unblocks Next with ErrHandleClosed.
	go func() {
		_, err := sub.Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, cod.ErrHandleClosed) {
			t.Fatalf("Next after Close: got %v, want ErrHandleClosed", err)
		}
	case <-time.After(waitLong):
		t.Fatal("Next never returned after Close")
	}
}

func TestShapeMismatchSurfaces(t *testing.T) {
	type narrow struct{ A float64 }
	type wide struct{ A, B float64 }

	fed := cod.NewFederation(cod.WithTimers(5*time.Millisecond, 50*time.Millisecond, 25*time.Millisecond))
	defer fed.Close()
	p, err := fed.Node("pub-pc")
	if err != nil {
		t.Fatal(err)
	}
	s, err := fed.Node("sub-pc")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cod.Publish[narrow](p, "pub", "Mismatch")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cod.Subscribe[wide](s, "sub", "Mismatch")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxLong(t)
	if err := sub.WaitMatched(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(0, narrow{A: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, cod.ErrMissingAttr) {
		t.Fatalf("mismatched shapes: got %v, want ErrMissingAttr", err)
	}
}

func TestFederationPropagatesErrorsAndCloses(t *testing.T) {
	fed := cod.NewFederation()
	a, err := fed.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Node("a"); err == nil {
		t.Fatal("duplicate node name was accepted")
	}

	boom := errors.New("module crashed")
	fed.Go(func() error { return boom })
	if err := fed.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait: got %v, want the module error", err)
	}

	if err := fed.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close: got %v, want the module error joined in", err)
	}
	// Nodes are gone and the federation refuses new ones.
	if err := a.Close(); err != nil {
		t.Fatalf("double node close: %v", err)
	}
	if _, err := fed.Node("b"); !errors.Is(err, cod.ErrFederationClosed) {
		t.Fatalf("Node after Close: got %v, want ErrFederationClosed", err)
	}
}

// TestFederationSharesUDPSegment pins the defaults-resolved-once rule: a
// WithUDPSegment default must yield ONE segment whose bookkeeping rejects
// duplicate node names, not a fresh LAN per node.
func TestFederationSharesUDPSegment(t *testing.T) {
	fed := cod.NewFederation(cod.WithUDPSegment("127.0.0.1", 39700, 4))
	defer fed.Close()
	if _, err := fed.Node("a"); err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	if _, err := fed.Node("a"); err == nil {
		t.Fatal("duplicate node name accepted on a UDP federation")
	}
}

func TestPublishRejectsBadType(t *testing.T) {
	type bad struct{ C chan int }
	fed := cod.NewFederation()
	defer fed.Close()
	n, err := fed.Node("pc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cod.Publish[bad](n, "lp", "Bad"); !errors.Is(err, cod.ErrUnsupportedType) {
		t.Fatalf("Publish[bad]: got %v, want ErrUnsupportedType", err)
	}
	if _, err := cod.Subscribe[bad](n, "lp", "Bad"); !errors.Is(err, cod.ErrUnsupportedType) {
		t.Fatalf("Subscribe[bad]: got %v, want ErrUnsupportedType", err)
	}
}

// TestLatestConflation exercises the conflated state-class mode through
// the typed façade.
func TestLatestConflation(t *testing.T) {
	fed := cod.NewFederation()
	defer fed.Close()
	n, err := fed.Node("pc")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cod.Publish[craneState](n, "dynamics", "CraneState")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cod.Subscribe[craneState](n, "visual", "CraneState", cod.WithConflation())
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WaitMatched(ctxLong(t)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := pub.Update(float64(i), craneState{Frame: i}); err != nil {
			t.Fatal(err)
		}
	}
	r, ok, err := sub.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: ok=%v err=%v", ok, err)
	}
	if r.Value.Frame != 5 {
		t.Fatalf("Latest kept frame %d, want 5 (conflation)", r.Value.Frame)
	}
}

// TestReliableWindowSDK pins the SDK backpressure surface: a Reliable
// subscriber's exhausted window surfaces as ErrWindowFull on Update,
// UpdateContext blocks until the subscriber consumes, and nothing is
// lost across the stall.
func TestReliableWindowSDK(t *testing.T) {
	fed := cod.NewFederation()
	defer fed.Close()
	pubPC, err := fed.Node("pub-pc")
	if err != nil {
		t.Fatal(err)
	}
	subPC, err := fed.Node("sub-pc")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := cod.Publish[craneState](pubPC, "dynamics", "Cmd")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cod.Subscribe[craneState](subPC, "worker", "Cmd", cod.Reliable(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WaitMatched(ctxLong(t)); err != nil {
		t.Fatal(err)
	}
	if err := pub.WaitChannels(ctxLong(t), 1); err != nil {
		t.Fatal(err)
	}

	if err := pub.Update(1, craneState{Frame: 1}); err != nil {
		t.Fatal(err)
	}
	if err := pub.Update(2, craneState{Frame: 2}); err != nil {
		t.Fatal(err)
	}
	// Window of 2 exhausted against the stalled subscriber.
	var stallErr error
	for deadline := time.Now().Add(waitLong); time.Now().Before(deadline); {
		stallErr = pub.Update(3, craneState{Frame: 3})
		if stallErr != nil {
			break
		}
	}
	if !errors.Is(stallErr, cod.ErrWindowFull) {
		t.Fatalf("stalled Update err = %v, want ErrWindowFull", stallErr)
	}

	// The blocking form parks until the subscriber consumes.
	unblocked := make(chan error, 1)
	go func() { unblocked <- pub.UpdateContext(ctxLong(t), 3, craneState{Frame: 3}) }()
	select {
	case err := <-unblocked:
		t.Fatalf("UpdateContext returned %v before consumption", err)
	case <-time.After(50 * time.Millisecond):
	}
	for i := 1; i <= 2; i++ {
		r, err := sub.Next(ctxLong(t))
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Frame != i {
			t.Fatalf("frame %d arrived as %d", i, r.Value.Frame)
		}
	}
	if err := <-unblocked; err != nil {
		t.Fatalf("release err = %v", err)
	}
	if r, err := sub.Next(ctxLong(t)); err != nil || r.Value.Frame != 3 {
		t.Fatalf("frame 3: %v %v", r.Value.Frame, err)
	}
}
