// Package cod is the public SDK of the codsim simulator runtime: a typed
// publish/subscribe façade over the Communication Backbone, the paper's
// transparent communication layer for a Cluster Of Desktop computers
// (Huang, Bai, Tai, Gau — ICDCS 2001, §2). It is the one supported way to
// build COD federations; the internal/ packages are implementation.
//
// A module joins the cluster by creating a Node, then registering its
// logical processes as typed publishers or subscribers of object classes:
//
//	type CraneState struct {
//		X, Y, Slew float64
//	}
//
//	fed := cod.NewFederation()
//	defer fed.Close()
//
//	dyn, _ := fed.Node("dynamics-pc")
//	vis, _ := fed.Node("display-pc")
//
//	pub, _ := cod.Publish[CraneState](dyn, "dynamics", "CraneState")
//	sub, _ := cod.Subscribe[CraneState](vis, "visual", "CraneState")
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	_ = sub.WaitMatched(ctx) // discovery: SUBSCRIPTION broadcast → channel
//
//	_ = pub.Update(0.1, CraneState{X: 1, Slew: 0.2})
//	r, _ := sub.Next(ctx)    // r.Value is a CraneState again
//
// Nodes on one in-memory LAN model the paper's Ethernet segment; WithUDP
// runs the same protocol over real sockets for multi-process clusters
// (see cmd/codnode). Discovery, virtual-channel construction, heartbeats
// and dynamic join all happen inside the backbone — callers never see a
// socket, which is the transparency the paper claims for the CB.
//
// # Codec contract
//
// Publish[T] and Subscribe[T] map the struct T to the backbone's
// attribute sets positionally: the i-th exported, un-tagged field gets
// attribute ID i+1. Publisher and subscriber interoperate exactly when
// they declare the same field sequence. Supported kinds: bool, int/uint
// of any size, float32/float64, string, []byte, []float64, []int64,
// []string. Tag a field `cod:"-"` to exclude it. Unsupported kinds are
// rejected by Publish/Subscribe, and a reflection missing a declared
// attribute is rejected by Next/Poll/Latest — shape mismatches surface as
// errors, never as silently zeroed fields.
//
// The codec is reflection-free on the hot path. Publish/Subscribe walk T
// once with the reflect package and record, per field, its attribute ID,
// kind and byte offset; Update and Next then move scalars (bools,
// integers, floats) through typed unsafe loads and stores at those
// offsets — no reflect.Value, no per-field interface boxing, no
// allocation. String and slice fields take a reflect-based path (their
// payloads must be copied into the attribute arena anyway), and all
// type validation stays at Publish/Subscribe time, so the fast path
// never trades away the fail-fast contract above. Encode scratch comes
// from a pool and is recycled when Update returns — safe because the
// backbone serializes or clones before returning (see the
// copy-at-boundary rule in the README).
//
// # Blocking and errors
//
// Every blocking call takes a context: Sub.Next, Sub.WaitMatched,
// Pub.WaitChannels. Cancellation returns ctx.Err(); an update racing a
// cancellation is still delivered. Pub.Update reports ErrNoSubscribers
// when it routed to zero channels, which fire-and-forget publishers
// ignore with errors.Is.
//
// # Delivery ordering
//
// On any single virtual channel — one publisher node to one subscriber
// LP — updates are delivered in publish (sequence) order, even when
// Update is called from several goroutines concurrently. No ordering is
// promised across channels, across different publishers of a class, or
// between classes.
//
// # Delivery policies
//
// Every subscription declares what saturation does. The subscriber
// states its policy in the channel handshake; the publisher's backbone
// enforces it:
//
//   - LatestValue (the SDK default): a full mailbox coalesces to the
//     newest reflection per virtual channel, counted as conflations.
//     The contract for periodic state — a stalled consumer costs bounded
//     memory and resumes on the freshest sample from every publisher.
//     The simulator's CraneState, MotionCue, ScenarioState and
//     ControlInput channels run this way.
//   - Reliable(window): nothing is dropped. Each publisher may have at
//     most window unconsumed updates in flight to the subscriber; past
//     that Update reports ErrWindowFull and UpdateContext blocks until
//     the subscriber consumes (credits flow back as its mailbox drains,
//     carried on link heartbeats — a frame legacy builds accept — so a
//     lost grant costs one beat at most). Saturation propagates to the
//     producer instead of the kernel's socket buffer. Instructor
//     commands and the whole dist dispatch protocol (jobs, claims,
//     grants, results, acks) run this way; dist heartbeats stay
//     LatestValue — newest beat per worker.
//   - DropOldest: the legacy contract — a full mailbox silently drops
//     its oldest reflection.
//
// Legacy rule: a handshake carrying no policy attribute (every
// pre-policy peer) yields DropOldest on both sides, so old recordings
// and mixed-version federations keep their original semantics — the
// same convention as the absent-CraneID rule below. Node.Tables exposes
// per-channel drop and conflation counts, so a lossy channel is named
// rather than inferred from backbone totals.
//
// # Multiple publishers per class
//
// Several LPs may publish the same object class — the simulator's
// multi-crane federation runs one dynamics publisher per carrier on the
// CraneState class. Subscribers receive the interleaved stream and tell
// the instances apart by a discriminating attribute; the simulator's FOM
// uses CraneID, with the legacy rule that an absent CraneID decodes as
// crane 0 so single-publisher peers and old recordings stay valid. When
// consuming such a class, prefer a queued subscription (WithQueue) folded
// into a newest-per-key view over conflation, which would keep only the
// newest reflection across all publishers.
//
// The SDK carries application traffic beyond the simulator's FOM: the
// distributed batch layer (internal/dist, cmd/codbatch) runs its whole
// coordinator/worker protocol — job announces, claims, grants, results,
// result acks and worker heartbeats, as the dist.Job, dist.Claim,
// dist.Grant, dist.Result, dist.Ack and dist.Heartbeat classes — over
// these same typed channels.
//
// # Observability
//
// Node.Stats and Node.Tables are the SDK's telemetry surface: process
// counters plus the live pub/sub tables with per-channel delivered,
// dropped and conflated tallies (Stats, TableEntry, ChannelTally). The
// telemetry plane (internal/obs, enabled with -obs on cmd/codbatch and
// cmd/codnode) scrapes exactly this surface into Prometheus series —
// it never reaches into the backbone internals, so anything visible at
// /metrics is equally available to SDK callers here.
package cod
