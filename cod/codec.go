package cod

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"unsafe"

	"codsim/internal/wire"
)

// The codec maps a plain Go struct to and from a wire.AttrSet. Attribute
// IDs are assigned positionally: the i-th encoded field (exported, not
// tagged `cod:"-"`, in declaration order) gets AttrID i+1. Both ends of a
// class therefore interoperate exactly when they declare the same fields
// in the same order — the struct *is* the object-model entry, the typed
// analog of a fom class.
//
// Supported field kinds: bool, all int/uint sizes, float32/float64,
// string, []byte, []float64, []int64, []string. Unexported fields are
// skipped; any other exported kind is rejected when the codec is built,
// so Publish/Subscribe fail fast instead of dropping data at runtime.
//
// Reflection runs only at build time. The cached field table holds each
// field's byte offset and scalar kind, so the encode/decode hot path is a
// switch over direct loads and stores through the struct pointer — no
// reflect.Value per field, no interface boxing. Strings and slices keep
// the reflect path (their getters allocate anyway, and reflect handles
// named-type conversion); scalars, which dominate simulation state, go
// through the offset fast path.

// ErrUnsupportedType reports a struct field the codec cannot map.
var ErrUnsupportedType = errors.New("cod: unsupported field type")

// ErrMissingAttr reports a reflection that lacks an attribute the
// subscriber's struct declares — the two ends disagree on the class shape.
var ErrMissingAttr = errors.New("cod: missing attribute")

// fieldKind enumerates the wire-mappable field shapes. Scalar kinds are
// distinguished by width so the hot path can load/store the exact type.
type fieldKind uint8

const (
	kindBool fieldKind = iota
	kindInt
	kindInt8
	kindInt16
	kindInt32
	kindInt64
	kindUint
	kindUint8
	kindUint16
	kindUint32
	kindUint64
	kindFloat32
	kindFloat64
	kindString
	kindBytes
	kindFloat64s
	kindInt64s
	kindStrings
)

type fieldCodec struct {
	name  string
	id    wire.AttrID
	index int
	off   uintptr // byte offset within the struct, fixed at build time
	kind  fieldKind
}

type codec struct {
	typ    reflect.Type
	fields []fieldCodec
}

// codecCache memoizes built codecs by struct type; reflection runs once
// per type per process, the hot path only walks the cached field table.
var codecCache sync.Map // reflect.Type → *codec or error

func codecFor(t reflect.Type) (*codec, error) {
	if cached, ok := codecCache.Load(t); ok {
		if err, bad := cached.(error); bad {
			return nil, err
		}
		return cached.(*codec), nil
	}
	c, err := buildCodec(t)
	if err != nil {
		codecCache.Store(t, err)
		return nil, err
	}
	codecCache.Store(t, c)
	return c, nil
}

func buildCodec(t reflect.Type) (*codec, error) {
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("%w: %s is not a struct", ErrUnsupportedType, t)
	}
	c := &codec{typ: t}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("cod") == "-" {
			continue
		}
		kind, err := kindFor(f.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %s.%s (%s)", ErrUnsupportedType, t, f.Name, f.Type)
		}
		c.fields = append(c.fields, fieldCodec{
			name:  f.Name,
			id:    wire.AttrID(len(c.fields) + 1),
			index: i,
			off:   f.Offset,
			kind:  kind,
		})
	}
	if len(c.fields) == 0 {
		return nil, fmt.Errorf("%w: %s has no encodable fields", ErrUnsupportedType, t)
	}
	return c, nil
}

func kindFor(t reflect.Type) (fieldKind, error) {
	switch t.Kind() {
	case reflect.Bool:
		return kindBool, nil
	case reflect.Int:
		return kindInt, nil
	case reflect.Int8:
		return kindInt8, nil
	case reflect.Int16:
		return kindInt16, nil
	case reflect.Int32:
		return kindInt32, nil
	case reflect.Int64:
		return kindInt64, nil
	case reflect.Uint:
		return kindUint, nil
	case reflect.Uint8:
		return kindUint8, nil
	case reflect.Uint16:
		return kindUint16, nil
	case reflect.Uint32:
		return kindUint32, nil
	case reflect.Uint64:
		return kindUint64, nil
	case reflect.Float32:
		return kindFloat32, nil
	case reflect.Float64:
		return kindFloat64, nil
	case reflect.String:
		return kindString, nil
	case reflect.Slice:
		return sliceKind(t)
	default:
		return 0, ErrUnsupportedType
	}
}

// Canonical slice types the codec serializes. Named slice types with these
// exact element types (type Path []float64) are converted through them;
// named *element* types ([]MyFloat) are rejected at build time because Go
// forbids the slice conversion — rejecting keeps the fail-fast contract.
var (
	bytesType    = reflect.TypeOf([]byte(nil))
	float64sType = reflect.TypeOf([]float64(nil))
	int64sType   = reflect.TypeOf([]int64(nil))
	stringsType  = reflect.TypeOf([]string(nil))
)

func sliceKind(t reflect.Type) (fieldKind, error) {
	switch t.Elem() {
	case bytesType.Elem():
		return kindBytes, nil
	case float64sType.Elem():
		return kindFloat64s, nil
	case int64sType.Elem():
		return kindInt64s, nil
	case stringsType.Elem():
		return kindStrings, nil
	default:
		return 0, ErrUnsupportedType
	}
}

// encodeInto packs the struct at p (a *T matching c.typ) into a. Scalars
// load straight through the field offset; strings and slices go through a
// lazily built reflect view for named-type conversion.
func (c *codec) encodeInto(a *wire.AttrSet, p unsafe.Pointer) {
	var sv reflect.Value
	for i := range c.fields {
		f := &c.fields[i]
		fp := unsafe.Add(p, f.off)
		switch f.kind {
		case kindBool:
			a.PutBool(f.id, *(*bool)(fp))
		case kindInt:
			a.PutInt64(f.id, int64(*(*int)(fp)))
		case kindInt8:
			a.PutInt64(f.id, int64(*(*int8)(fp)))
		case kindInt16:
			a.PutInt64(f.id, int64(*(*int16)(fp)))
		case kindInt32:
			a.PutInt64(f.id, int64(*(*int32)(fp)))
		case kindInt64:
			a.PutInt64(f.id, *(*int64)(fp))
		case kindUint:
			a.PutInt64(f.id, int64(*(*uint)(fp)))
		case kindUint8:
			a.PutInt64(f.id, int64(*(*uint8)(fp)))
		case kindUint16:
			a.PutInt64(f.id, int64(*(*uint16)(fp)))
		case kindUint32:
			a.PutInt64(f.id, int64(*(*uint32)(fp)))
		case kindUint64:
			a.PutInt64(f.id, int64(*(*uint64)(fp)))
		case kindFloat32:
			a.PutFloat64(f.id, float64(*(*float32)(fp)))
		case kindFloat64:
			a.PutFloat64(f.id, *(*float64)(fp))
		default:
			if !sv.IsValid() {
				sv = reflect.NewAt(c.typ, p).Elem()
			}
			encodeReflect(a, f, sv.Field(f.index))
		}
	}
}

func encodeReflect(a *wire.AttrSet, f *fieldCodec, v reflect.Value) {
	switch f.kind {
	case kindString:
		a.PutString(f.id, v.String())
	case kindBytes:
		a.PutBytes(f.id, v.Bytes())
	case kindFloat64s:
		a.PutFloat64s(f.id, v.Convert(float64sType).Interface().([]float64))
	case kindInt64s:
		a.PutInt64s(f.id, v.Convert(int64sType).Interface().([]int64))
	case kindStrings:
		a.PutStrings(f.id, v.Convert(stringsType).Interface().([]string))
	}
}

// decodeInto unpacks an AttrSet into the struct at p (a *T matching
// c.typ). Every declared field must be present and well-sized, or the
// reflection is rejected: a silent partial fill would hand modules
// half-stale state.
func (c *codec) decodeInto(a wire.AttrSet, p unsafe.Pointer) error {
	var sv reflect.Value
	for i := range c.fields {
		f := &c.fields[i]
		fp := unsafe.Add(p, f.off)
		var ok bool
		switch f.kind {
		case kindBool:
			var b bool
			if b, ok = a.Bool(f.id); ok {
				*(*bool)(fp) = b
			}
		case kindInt:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*int)(fp) = int(n)
			}
		case kindInt8:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*int8)(fp) = int8(n)
			}
		case kindInt16:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*int16)(fp) = int16(n)
			}
		case kindInt32:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*int32)(fp) = int32(n)
			}
		case kindInt64:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*int64)(fp) = n
			}
		case kindUint:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*uint)(fp) = uint(n)
			}
		case kindUint8:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*uint8)(fp) = uint8(n)
			}
		case kindUint16:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*uint16)(fp) = uint16(n)
			}
		case kindUint32:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*uint32)(fp) = uint32(n)
			}
		case kindUint64:
			var n int64
			if n, ok = a.Int64(f.id); ok {
				*(*uint64)(fp) = uint64(n)
			}
		case kindFloat32:
			var x float64
			if x, ok = a.Float64(f.id); ok {
				*(*float32)(fp) = float32(x)
			}
		case kindFloat64:
			var x float64
			if x, ok = a.Float64(f.id); ok {
				*(*float64)(fp) = x
			}
		default:
			if !sv.IsValid() {
				sv = reflect.NewAt(c.typ, p).Elem()
			}
			ok = decodeReflect(a, f, sv.Field(f.index))
		}
		if !ok {
			return fmt.Errorf("%w: %s.%s (attr %d)", ErrMissingAttr, c.typ, f.name, f.id)
		}
	}
	return nil
}

func decodeReflect(a wire.AttrSet, f *fieldCodec, v reflect.Value) bool {
	switch f.kind {
	case kindString:
		s, ok := a.String(f.id)
		if ok {
			v.SetString(s)
		}
		return ok
	case kindBytes:
		b, ok := a.Bytes(f.id)
		if ok {
			cp := make([]byte, len(b))
			copy(cp, b)
			v.Set(reflect.ValueOf(cp).Convert(v.Type()))
		}
		return ok
	case kindFloat64s:
		vs, ok := a.Float64s(f.id)
		if ok {
			v.Set(reflect.ValueOf(vs).Convert(v.Type()))
		}
		return ok
	case kindInt64s:
		vs, ok := a.Int64s(f.id)
		if ok {
			v.Set(reflect.ValueOf(vs).Convert(v.Type()))
		}
		return ok
	default: // kindStrings
		vs, ok := a.Strings(f.id)
		if ok {
			v.Set(reflect.ValueOf(vs).Convert(v.Type()))
		}
		return ok
	}
}

// encode packs one struct value into a fresh AttrSet — the reflect-value
// shim over encodeInto, kept for callers without an addressable T.
func (c *codec) encode(v reflect.Value) wire.AttrSet {
	pv := reflect.New(c.typ)
	pv.Elem().Set(v)
	a := wire.NewAttrSet(len(c.fields))
	c.encodeInto(&a, pv.UnsafePointer())
	return a
}

// decode unpacks an AttrSet into dst (an addressable struct value) — the
// reflect-value shim over decodeInto.
func (c *codec) decode(a wire.AttrSet, dst reflect.Value) error {
	return c.decodeInto(a, dst.Addr().UnsafePointer())
}
