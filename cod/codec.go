package cod

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"codsim/internal/wire"
)

// The codec maps a plain Go struct to and from a wire.AttrSet. Attribute
// IDs are assigned positionally: the i-th encoded field (exported, not
// tagged `cod:"-"`, in declaration order) gets AttrID i+1. Both ends of a
// class therefore interoperate exactly when they declare the same fields
// in the same order — the struct *is* the object-model entry, the typed
// analog of a fom class.
//
// Supported field kinds: bool, all int/uint sizes, float32/float64,
// string, []byte, []float64, []int64, []string. Unexported fields are
// skipped; any other exported kind is rejected when the codec is built,
// so Publish/Subscribe fail fast instead of dropping data at runtime.

// ErrUnsupportedType reports a struct field the codec cannot map.
var ErrUnsupportedType = errors.New("cod: unsupported field type")

// ErrMissingAttr reports a reflection that lacks an attribute the
// subscriber's struct declares — the two ends disagree on the class shape.
var ErrMissingAttr = errors.New("cod: missing attribute")

type fieldCodec struct {
	name  string
	id    wire.AttrID
	index int
	enc   func(a wire.AttrSet, id wire.AttrID, v reflect.Value)
	dec   func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool
}

type codec struct {
	typ    reflect.Type
	fields []fieldCodec
}

// codecCache memoizes built codecs by struct type; reflection runs once
// per type per process, the hot path only walks the cached field table.
var codecCache sync.Map // reflect.Type → *codec or error

func codecFor(t reflect.Type) (*codec, error) {
	if cached, ok := codecCache.Load(t); ok {
		if err, bad := cached.(error); bad {
			return nil, err
		}
		return cached.(*codec), nil
	}
	c, err := buildCodec(t)
	if err != nil {
		codecCache.Store(t, err)
		return nil, err
	}
	codecCache.Store(t, c)
	return c, nil
}

func buildCodec(t reflect.Type) (*codec, error) {
	if t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("%w: %s is not a struct", ErrUnsupportedType, t)
	}
	c := &codec{typ: t}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("cod") == "-" {
			continue
		}
		fc := fieldCodec{
			name:  f.Name,
			id:    wire.AttrID(len(c.fields) + 1),
			index: i,
		}
		var err error
		fc.enc, fc.dec, err = kindCodec(f.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %s.%s (%s)", ErrUnsupportedType, t, f.Name, f.Type)
		}
		c.fields = append(c.fields, fc)
	}
	if len(c.fields) == 0 {
		return nil, fmt.Errorf("%w: %s has no encodable fields", ErrUnsupportedType, t)
	}
	return c, nil
}

func kindCodec(t reflect.Type) (
	enc func(wire.AttrSet, wire.AttrID, reflect.Value),
	dec func(wire.AttrSet, wire.AttrID, reflect.Value) bool,
	err error,
) {
	switch t.Kind() {
	case reflect.Bool:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutBool(id, v.Bool())
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				b, ok := a.Bool(id)
				if ok {
					v.SetBool(b)
				}
				return ok
			}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutInt64(id, v.Int())
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				n, ok := a.Int64(id)
				if ok {
					v.SetInt(n)
				}
				return ok
			}, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutInt64(id, int64(v.Uint()))
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				n, ok := a.Int64(id)
				if ok {
					v.SetUint(uint64(n))
				}
				return ok
			}, nil
	case reflect.Float32, reflect.Float64:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutFloat64(id, v.Float())
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				f, ok := a.Float64(id)
				if ok {
					v.SetFloat(f)
				}
				return ok
			}, nil
	case reflect.String:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutString(id, v.String())
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				s, ok := a.String(id)
				if ok {
					v.SetString(s)
				}
				return ok
			}, nil
	case reflect.Slice:
		return sliceCodec(t)
	default:
		return nil, nil, ErrUnsupportedType
	}
}

// Canonical slice types the codec serializes. Named slice types with these
// exact element types (type Path []float64) are converted through them;
// named *element* types ([]MyFloat) are rejected at build time because Go
// forbids the slice conversion — rejecting keeps the fail-fast contract.
var (
	bytesType    = reflect.TypeOf([]byte(nil))
	float64sType = reflect.TypeOf([]float64(nil))
	int64sType   = reflect.TypeOf([]int64(nil))
	stringsType  = reflect.TypeOf([]string(nil))
)

func sliceCodec(t reflect.Type) (
	enc func(wire.AttrSet, wire.AttrID, reflect.Value),
	dec func(wire.AttrSet, wire.AttrID, reflect.Value) bool,
	err error,
) {
	var canon reflect.Type
	switch t.Elem() {
	case bytesType.Elem():
		canon = bytesType
	case float64sType.Elem():
		canon = float64sType
	case int64sType.Elem():
		canon = int64sType
	case stringsType.Elem():
		canon = stringsType
	default:
		return nil, nil, ErrUnsupportedType
	}
	switch canon {
	case bytesType:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutBytes(id, v.Bytes())
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				b, ok := a.Bytes(id)
				if ok {
					cp := make([]byte, len(b))
					copy(cp, b)
					v.Set(reflect.ValueOf(cp).Convert(t))
				}
				return ok
			}, nil
	case float64sType:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutFloat64s(id, v.Convert(canon).Interface().([]float64))
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				vs, ok := a.Float64s(id)
				if ok {
					v.Set(reflect.ValueOf(vs).Convert(t))
				}
				return ok
			}, nil
	case int64sType:
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutInt64s(id, v.Convert(canon).Interface().([]int64))
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				vs, ok := a.Int64s(id)
				if ok {
					v.Set(reflect.ValueOf(vs).Convert(t))
				}
				return ok
			}, nil
	default: // stringsType
		return func(a wire.AttrSet, id wire.AttrID, v reflect.Value) {
				a.PutStrings(id, v.Convert(canon).Interface().([]string))
			}, func(a wire.AttrSet, id wire.AttrID, v reflect.Value) bool {
				vs, ok := a.Strings(id)
				if ok {
					v.Set(reflect.ValueOf(vs).Convert(t))
				}
				return ok
			}, nil
	}
}

// encode packs one struct value into a fresh AttrSet.
func (c *codec) encode(v reflect.Value) wire.AttrSet {
	a := make(wire.AttrSet, len(c.fields))
	for i := range c.fields {
		f := &c.fields[i]
		f.enc(a, f.id, v.Field(f.index))
	}
	return a
}

// decode unpacks an AttrSet into dst (an addressable struct value). Every
// declared field must be present and well-sized, or the reflection is
// rejected: a silent partial fill would hand modules half-stale state.
func (c *codec) decode(a wire.AttrSet, dst reflect.Value) error {
	for i := range c.fields {
		f := &c.fields[i]
		if !f.dec(a, f.id, dst.Field(f.index)) {
			return fmt.Errorf("%w: %s.%s (attr %d)", ErrMissingAttr, c.typ, f.name, f.id)
		}
	}
	return nil
}
