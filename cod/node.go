package cod

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"codsim/internal/cb"
	"codsim/internal/transport"
)

// LAN is the network segment a federation runs on. The SDK re-exports the
// transport abstraction so callers never import internal packages:
// NewMemLAN builds the simulated segment, WithUDP a real-socket one.
type LAN = transport.LAN

// Stats re-exports the backbone's instrumentation counters.
type Stats = cb.Stats

// TableEntry re-exports one row of a Publication or Subscription table.
type TableEntry = cb.TableEntry

// ChannelTally re-exports one virtual channel's delivery/loss accounting
// within a TableEntry, so telemetry consumers (internal/obs, external
// harnesses) never import the backbone internals.
type ChannelTally = cb.ChannelTally

// MemLANOption tunes a simulated in-memory segment: latency, jitter,
// datagram loss, bandwidth and the impairment seed. The SDK re-exports
// the transport options so experiment harnesses never import internal
// packages.
type MemLANOption = transport.MemOption

// WithLatency delays every datagram by d on a simulated segment.
func WithLatency(d time.Duration) MemLANOption { return transport.WithLatency(d) }

// WithJitter adds up to d of random extra delay per datagram.
func WithJitter(d time.Duration) MemLANOption { return transport.WithJitter(d) }

// WithLoss drops each broadcast datagram with probability p in [0,1).
func WithLoss(p float64) MemLANOption { return transport.WithLoss(p) }

// WithBandwidth caps the segment's throughput in bytes per second.
func WithBandwidth(bytesPerSec float64) MemLANOption { return transport.WithBandwidth(bytesPerSec) }

// WithSeed pins the segment's impairment randomness, making a lossy or
// jittery run reproducible.
func WithSeed(seed int64) MemLANOption { return transport.WithSeed(seed) }

// NewMemLAN creates an in-memory LAN segment for nodes of one process,
// optionally impaired (latency, loss, ...) for experiments. Pass it to
// every node of the federation via WithLAN, or let a Federation manage
// the sharing.
func NewMemLAN(opts ...MemLANOption) LAN { return transport.NewMemLAN(opts...) }

// NewUDPLAN joins a real UDP/TCP segment of slots consecutive ports
// starting at basePort on host, returning the LAN handle directly — the
// standalone form of WithUDPSegment, for callers that hand one segment
// to several nodes or to sim.Config.
func NewUDPLAN(host string, basePort, slots int) (LAN, error) {
	return transport.NewUDPLAN(host, basePort, slots)
}

// defaultLAN is the process-wide segment used by nodes created without an
// explicit transport option, so the two-line quickstart just works.
var defaultLAN = struct {
	once sync.Once
	lan  LAN
}{}

func processLAN() LAN {
	defaultLAN.once.Do(func() { defaultLAN.lan = transport.NewMemLAN() })
	return defaultLAN.lan
}

// nodeConfig accumulates the functional options of NewNode.
type nodeConfig struct {
	lan    LAN
	lanErr error
	cfg    cb.Config
}

// Option configures a Node (and, through a Federation's defaults, every
// node of a federation).
type Option func(*nodeConfig)

// WithLAN attaches the node to an existing LAN segment — an in-memory one
// from NewMemLAN or any other transport.LAN the caller already holds.
// Every node of the federation must share the same segment. A nil lan
// falls back to the process-wide default in-memory segment.
func WithLAN(lan LAN) Option {
	return func(c *nodeConfig) { c.lan = lan }
}

// WithMemLAN is WithLAN under its historical name: it predates segments
// other than MemLAN being shareable this way.
func WithMemLAN(lan LAN) Option { return WithLAN(lan) }

// defaultUDPSlots is the segment size WithUDP assumes: the paper's rack
// held eight computers, sixteen leaves room to double it.
const defaultUDPSlots = 16

// WithUDP attaches the node to a real UDP/TCP segment. addr is
// "host:basePort"; the segment spans defaultUDPSlots consecutive UDP
// ports starting at basePort, one per computer. Every process of the
// federation must name the same segment. See WithUDPSegment to size the
// segment explicitly.
func WithUDP(addr string) Option {
	return func(c *nodeConfig) {
		host, portStr, err := net.SplitHostPort(addr)
		if err != nil {
			c.lanErr = fmt.Errorf("cod: WithUDP %q: %w", addr, err)
			return
		}
		base, err := strconv.Atoi(portStr)
		if err != nil {
			c.lanErr = fmt.Errorf("cod: WithUDP %q: bad port: %w", addr, err)
			return
		}
		WithUDPSegment(host, base, defaultUDPSlots)(c)
	}
}

// WithUDPSegment attaches the node to a UDP/TCP segment of slots
// consecutive ports starting at basePort.
func WithUDPSegment(host string, basePort, slots int) Option {
	return func(c *nodeConfig) {
		lan, err := transport.NewUDPLAN(host, basePort, slots)
		if err != nil {
			c.lanErr = fmt.Errorf("cod: UDP segment %s:%d+%d: %w", host, basePort, slots, err)
			return
		}
		c.lan = lan
	}
}

// WithTimers tunes the discovery and liveness timers: broadcast is the
// SUBSCRIPTION re-broadcast period while unmatched, refresh the slower
// period after matching (dynamic join), heartbeat the idle-link beacon
// period (peer death is declared at four missed beacons). Zero values
// keep the defaults.
func WithTimers(broadcast, refresh, heartbeat time.Duration) Option {
	return func(c *nodeConfig) {
		c.cfg.BroadcastInterval = broadcast
		c.cfg.RefreshInterval = refresh
		c.cfg.HeartbeatInterval = heartbeat
	}
}

// WithHeartbeatTimeout sets how long a silent link is tolerated before
// the peer is declared dead and its channels are torn down. Zero keeps
// the default. Tighten it together with WithTimers' heartbeat period in
// fast-failover experiment rigs.
func WithHeartbeatTimeout(d time.Duration) Option {
	return func(c *nodeConfig) { c.cfg.HeartbeatTimeout = d }
}

// WithClock pins the node's timestamp clock (establish-latency metrics,
// liveness bookkeeping). Timer scheduling still runs on real tickers;
// the hook makes timestamps deterministic for tests.
func WithClock(now func() time.Time) Option {
	return func(c *nodeConfig) { c.cfg.Now = now }
}

// WithMailboxDepth sets the default per-subscription buffer depth.
func WithMailboxDepth(depth int) Option {
	return func(c *nodeConfig) { c.cfg.MailboxDepth = depth }
}

// Node is one computer of the Cluster Of Desktops: a handle on its
// Communication Backbone through which local logical processes publish
// and subscribe. Create it with NewNode or Federation.Node and release it
// with Close. All methods are safe for concurrent use.
type Node struct {
	bb *cb.Backbone
}

// NewNode attaches a node to the LAN under the given unique name. Without
// a transport option the node joins a process-wide in-memory segment, so
// nodes of a quick single-process program find each other with no setup.
func NewNode(name string, opts ...Option) (*Node, error) {
	var c nodeConfig
	for _, o := range opts {
		o(&c)
	}
	return newNode(name, &c)
}

func newNode(name string, c *nodeConfig) (*Node, error) {
	if c.lanErr != nil {
		return nil, c.lanErr
	}
	if c.lan == nil {
		c.lan = processLAN()
	}
	bb, err := cb.New(c.lan, name, c.cfg)
	if err != nil {
		return nil, err
	}
	return &Node{bb: bb}, nil
}

// Name returns the node's unique name on the segment.
func (n *Node) Name() string { return n.bb.Node() }

// Addr returns the node's dialable stream address.
func (n *Node) Addr() string { return n.bb.Addr() }

// Stats returns the node's live instrumentation counters. The pointer
// stays valid for the node's lifetime.
func (n *Node) Stats() *Stats { return n.bb.Stats() }

// Tables returns snapshots of the node's Publication and Subscription
// tables, for monitoring.
func (n *Node) Tables() (pubs, subs []TableEntry) { return n.bb.Tables() }

// Backbone exposes the underlying Communication Backbone for the internal
// simulator modules (displaysync, timesync, sim) that predate the SDK.
// New code should stay on the typed Publish/Subscribe surface.
func (n *Node) Backbone() *cb.Backbone { return n.bb }

// Close tears down every registration and channel of the node and
// detaches it from the LAN. Close is idempotent.
func (n *Node) Close() error { return n.bb.Close() }
