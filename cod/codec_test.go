package cod

import (
	"errors"
	"reflect"
	"testing"
)

// allKinds exercises every supported field kind of the codec.
type allKinds struct {
	F64     float64
	F32     float32
	I       int
	I64     int64
	U32     uint32
	B       bool
	S       string
	Raw     []byte
	Floats  []float64
	Ints    []int64
	Names   []string
	skipped int    // unexported: ignored
	Ignored string `cod:"-"`
}

func TestCodecRoundTrip(t *testing.T) {
	in := allKinds{
		F64:    3.25,
		F32:    -1.5,
		I:      -42,
		I64:    1 << 40,
		U32:    7,
		B:      true,
		S:      "boom",
		Raw:    []byte{0, 1, 2},
		Floats: []float64{1.5, -2.5},
		Ints:   []int64{-9, 9},
		Names:  []string{"hook", "", "cargo"},
	}
	c, err := codecFor(reflect.TypeOf(in))
	if err != nil {
		t.Fatal(err)
	}
	attrs := c.encode(reflect.ValueOf(in))
	var out allKinds
	if err := c.decode(attrs, reflect.ValueOf(&out).Elem()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestCodecIsCached(t *testing.T) {
	c1, err := codecFor(reflect.TypeOf(allKinds{}))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := codecFor(reflect.TypeOf(allKinds{}))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("codec was rebuilt instead of served from the cache")
	}
}

// Named slice types (exact element types) convert through the canonical
// encodings; named element types are rejected at build time, not at the
// first Update.
func TestCodecNamedSliceTypes(t *testing.T) {
	type Path []float64
	type Blob []byte
	type Tags []string
	type ok struct {
		P Path
		B Blob
		T Tags
	}
	in := ok{P: Path{1, 2}, B: Blob{3}, T: Tags{"a"}}
	c, err := codecFor(reflect.TypeOf(in))
	if err != nil {
		t.Fatal(err)
	}
	var out ok
	if err := c.decode(c.encode(reflect.ValueOf(in)), reflect.ValueOf(&out).Elem()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("named-slice round trip mismatch:\n in  %+v\n out %+v", in, out)
	}

	type MyFloat float64
	type badElem struct{ V []MyFloat }
	if _, err := codecFor(reflect.TypeOf(badElem{})); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("named element type: got %v, want ErrUnsupportedType", err)
	}
}

func TestCodecUnsupportedField(t *testing.T) {
	type bad struct {
		OK float64
		Ch chan int
	}
	if _, err := codecFor(reflect.TypeOf(bad{})); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("chan field: got %v, want ErrUnsupportedType", err)
	}
	type empty struct {
		hidden int
	}
	if _, err := codecFor(reflect.TypeOf(empty{})); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("no encodable fields: got %v, want ErrUnsupportedType", err)
	}
	if _, err := codecFor(reflect.TypeOf(42)); !errors.Is(err, ErrUnsupportedType) {
		t.Fatalf("non-struct: got %v, want ErrUnsupportedType", err)
	}
}

func TestCodecMissingAttr(t *testing.T) {
	type narrow struct{ A float64 }
	type wide struct{ A, B float64 }
	nc, err := codecFor(reflect.TypeOf(narrow{}))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := codecFor(reflect.TypeOf(wide{}))
	if err != nil {
		t.Fatal(err)
	}
	attrs := nc.encode(reflect.ValueOf(narrow{A: 1}))
	var out wide
	if err := wc.decode(attrs, reflect.ValueOf(&out).Elem()); !errors.Is(err, ErrMissingAttr) {
		t.Fatalf("decode with missing attr: got %v, want ErrMissingAttr", err)
	}
}
