package cod

import (
	"context"
	"errors"
	"reflect"
	"unsafe"

	"codsim/internal/cb"
	"codsim/internal/wire"
)

// Errors of the typed façade.
var (
	// ErrNoSubscribers reports an Update that was routed into zero virtual
	// channels — nobody is listening (yet). The update is not an error of
	// the backbone, so publishers free-running ahead of discovery ignore
	// it with errors.Is; publishers that must be heard treat it as fatal
	// or WaitChannels first.
	ErrNoSubscribers = errors.New("cod: no subscribers")
	// ErrClosed re-exports the backbone's closed error.
	ErrClosed = cb.ErrClosed
	// ErrHandleClosed re-exports the registration-handle closed error,
	// returned by Sub.Next when the subscription is closed mid-wait.
	ErrHandleClosed = cb.ErrHandleClosed
	// ErrWindowFull re-exports the backbone's credit-exhaustion error: an
	// Update found a Reliable subscriber's send window full, so that
	// subscriber got nothing. Retry after it consumes, or use
	// UpdateContext to block for credits.
	ErrWindowFull = cb.ErrWindowFull
)

// SubOption configures a subscription; the SDK re-exports the backbone's
// delivery modes under the same names.
type SubOption = cb.SubscribeOption

// WithQueue sets the mailbox depth. What happens on overflow is the
// subscription's delivery policy: LatestValue (the SDK default) conflates
// to the newest reflection per channel, Reliable never overflows (the
// publisher stalls first), DropOldest discards the oldest.
func WithQueue(depth int) SubOption { return cb.WithQueue(depth) }

// WithConflation keeps only the newest reflection (a depth-1 LatestValue
// mailbox) — the natural mode for single-publisher state classes sampled
// by a display loop. With several publishers of the class prefer
// LatestValue with a queue of at least the publisher count.
func WithConflation() SubOption { return cb.WithConflation() }

// LatestValue selects the conflating delivery policy, the SDK default: a
// full mailbox coalesces to the newest reflection per virtual channel.
// Right for periodic state (60 Hz crane state, motion cues) — memory
// stays bounded under a stalled consumer, which resumes on the freshest
// sample from every publisher.
func LatestValue() SubOption { return cb.WithLatestValue() }

// Reliable selects the credit-windowed delivery policy: nothing is ever
// dropped. Each publisher may have at most window unconsumed updates in
// flight to this subscription; past that its Update reports ErrWindowFull
// (or UpdateContext blocks) until this subscriber consumes — saturation
// propagates to the producer instead of the kernel buffer. window <= 0
// uses the backbone default (64). Right for must-not-lose traffic:
// instructor commands, exam results, batch jobs.
func Reliable(window int) SubOption { return cb.WithReliable(window) }

// DropOldest selects the legacy policy: a full mailbox silently drops its
// oldest reflection. This is what policy-less legacy peers get; new code
// should prefer LatestValue or Reliable.
func DropOldest() SubOption { return cb.WithDropOldest() }

// Reflection is one delivered update, decoded into the subscriber's type:
// the typed view of REFLECT ATTRIBUTE VALUE.
type Reflection[T any] struct {
	// Value is the decoded update.
	Value T
	// Class is the object class the update belongs to.
	Class string
	// PubNode and PubLP identify the publishing node and logical process.
	PubNode string
	PubLP   string
	// Seq is the per-channel sequence number.
	Seq uint32
	// Time is the publisher's simulation time.
	Time float64
}

// Pub is a typed publisher registration: LP lp publishes object class
// class as values of T. Obtain it from Publish.
type Pub[T any] struct {
	pub   *cb.Publication
	codec *codec
}

// Publish registers lp on node as a publisher of class, exchanging values
// of struct type T (see the codec contract in this package's doc). It
// fails fast when T has a field the codec cannot map.
func Publish[T any](node *Node, lp, class string) (*Pub[T], error) {
	c, err := codecFor(reflect.TypeFor[T]())
	if err != nil {
		return nil, err
	}
	p, err := node.bb.PublishObjectClass(lp, class)
	if err != nil {
		return nil, err
	}
	return &Pub[T]{pub: p, codec: c}, nil
}

// Update pushes v into every virtual channel of the class (UPDATE
// ATTRIBUTE VALUE) at simulation time simTime. When the class currently
// has no channels the call still succeeds at the backbone but reports
// ErrNoSubscribers, so callers choose between fire-and-forget
// (errors.Is-ignore) and must-be-heard semantics. A Reliable subscriber
// whose credit window is exhausted is skipped with ErrWindowFull; see
// UpdateContext for the blocking form.
func (p *Pub[T]) Update(simTime float64, v T) error {
	// The scratch AttrSet comes from wire's pool and goes back as soon as
	// UpdateRouted returns: the backbone's copy-at-boundary rule (local
	// delivery clones, remote delivery serializes before returning) makes
	// the return the release point, so a steady-state Update reuses the
	// same arena every call.
	a := wire.GetAttrSet()
	p.codec.encodeInto(a, unsafe.Pointer(&v))
	routed, err := p.pub.UpdateRouted(simTime, *a)
	wire.PutAttrSet(a)
	if err != nil {
		return err
	}
	if routed == 0 {
		return ErrNoSubscribers
	}
	return nil
}

// UpdateContext is Update that blocks while any Reliable subscriber's
// credit window is exhausted, resuming as credits are granted; ctx bounds
// the stall (ctx.Err() on cancellation). This is the publish side of the
// backpressure contract: a saturated subscriber slows the producer down
// instead of losing data.
func (p *Pub[T]) UpdateContext(ctx context.Context, simTime float64, v T) error {
	a := wire.GetAttrSet()
	p.codec.encodeInto(a, unsafe.Pointer(&v))
	routed, err := p.pub.UpdateRoutedContext(ctx, simTime, *a)
	wire.PutAttrSet(a)
	if err != nil {
		return err
	}
	if routed == 0 {
		return ErrNoSubscribers
	}
	return nil
}

// SendNull pushes a Chandy–Misra null message carrying only the
// publisher's simulation-time lower bound.
func (p *Pub[T]) SendNull(simTime float64) error { return p.pub.SendNull(simTime) }

// Channels returns the number of virtual channels currently carrying the
// class.
func (p *Pub[T]) Channels() int { return p.pub.Channels() }

// WaitChannels blocks until the class has at least n channels or ctx is
// done, in which case it returns ctx.Err().
func (p *Pub[T]) WaitChannels(ctx context.Context, n int) error {
	return p.pub.WaitChannelsContext(ctx, n)
}

// Raw exposes the untyped backbone registration, for callers mixing typed
// and attribute-level traffic.
func (p *Pub[T]) Raw() *cb.Publication { return p.pub }

// Close withdraws the publisher registration.
func (p *Pub[T]) Close() error { return p.pub.Close() }

// Sub is a typed subscriber registration: LP lp receives class updates
// decoded into T. Obtain it from Subscribe.
type Sub[T any] struct {
	sub   *cb.Subscription
	codec *codec
}

// Subscribe registers lp on node as a subscriber of class, receiving
// values of struct type T. The node's backbone broadcasts SUBSCRIPTION
// until a publisher is found and keeps refreshing afterwards, so late
// publishers still match (dynamic join). It fails fast when T has a field
// the codec cannot map.
//
// The default delivery policy at this layer is LatestValue — typed state
// subscribers want the newest value, and an SDK consumer that stalls
// should cost memory-bounded conflation, not unbounded growth or blind
// drops. Pass Reliable(window) for must-not-lose classes, or DropOldest
// for the backbone's legacy contract.
func Subscribe[T any](node *Node, lp, class string, opts ...SubOption) (*Sub[T], error) {
	c, err := codecFor(reflect.TypeFor[T]())
	if err != nil {
		return nil, err
	}
	// The SDK default leads; an explicit policy option among opts lands
	// later in the slice and overrides it.
	opts = append([]SubOption{cb.WithLatestValue()}, opts...)
	s, err := node.bb.SubscribeObjectClass(lp, class, opts...)
	if err != nil {
		return nil, err
	}
	return &Sub[T]{sub: s, codec: c}, nil
}

// decode converts one backbone reflection into the typed form.
func (s *Sub[T]) decode(r cb.Reflection) (Reflection[T], error) {
	out := Reflection[T]{
		Class:   r.Class,
		PubNode: r.PubNode,
		PubLP:   r.PubLP,
		Seq:     r.Seq,
		Time:    r.Time,
	}
	err := s.codec.decodeInto(r.Attrs, unsafe.Pointer(&out.Value))
	return out, err
}

// Next blocks until an update arrives, ctx is done (ctx.Err()), or the
// subscription closes (ErrHandleClosed). Null messages — time-only, no
// attributes — are skipped; use Raw for conservative-time consumers that
// need them. A decode failure (class shape mismatch) is returned as an
// ErrMissingAttr error.
func (s *Sub[T]) Next(ctx context.Context) (Reflection[T], error) {
	for {
		r, err := s.sub.NextContext(ctx)
		if err != nil {
			return Reflection[T]{}, err
		}
		if r.Null {
			continue
		}
		return s.decode(r)
	}
}

// Poll returns the oldest buffered update without blocking; ok is false
// when none is buffered. Null messages are skipped.
func (s *Sub[T]) Poll() (r Reflection[T], ok bool, err error) {
	for {
		raw, got := s.sub.Poll()
		if !got {
			return Reflection[T]{}, false, nil
		}
		if raw.Null {
			continue
		}
		r, err = s.decode(raw)
		return r, true, err
	}
}

// Latest drains the mailbox and returns the newest update; ok is false
// when the mailbox held none. Convenient for conflated state classes.
func (s *Sub[T]) Latest() (r Reflection[T], ok bool, err error) {
	var (
		last    cb.Reflection
		gotLast bool
	)
	for {
		raw, got := s.sub.Poll()
		if !got {
			break
		}
		if raw.Null {
			continue
		}
		last, gotLast = raw, true
	}
	if !gotLast {
		return Reflection[T]{}, false, nil
	}
	r, err = s.decode(last)
	return r, true, err
}

// WaitMatched blocks until the subscription has at least one fully
// established virtual channel or ctx is done, in which case it returns
// ctx.Err().
func (s *Sub[T]) WaitMatched(ctx context.Context) error {
	return s.sub.WaitMatchedContext(ctx)
}

// Matched reports whether at least one virtual channel is fully
// established.
func (s *Sub[T]) Matched() bool { return s.sub.Matched() }

// Pending returns the number of buffered updates (nulls included).
func (s *Sub[T]) Pending() int { return s.sub.Pending() }

// NotifyC returns a channel receiving a token whenever the mailbox goes
// from empty to non-empty, for select-based consumers.
func (s *Sub[T]) NotifyC() <-chan struct{} { return s.sub.NotifyC() }

// Raw exposes the untyped backbone registration.
func (s *Sub[T]) Raw() *cb.Subscription { return s.sub }

// Close withdraws the subscriber registration and releases its channels.
func (s *Sub[T]) Close() error { return s.sub.Close() }
