module codsim

go 1.24
