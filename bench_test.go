// Benchmarks regenerating the paper's quantitative artifacts, one family
// per experiment of DESIGN.md §3. Run:
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the corresponding full tables; EXPERIMENTS.md
// records a reference run of both.
package codsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"codsim/internal/cb"
	"codsim/internal/collision"
	"codsim/internal/crane"
	"codsim/internal/displaysync"
	"codsim/internal/dynamics"
	"codsim/internal/fom"
	"codsim/internal/mathx"
	"codsim/internal/motion"
	"codsim/internal/render"
	"codsim/internal/scenario"
	"codsim/internal/scenario/gen"
	"codsim/internal/sim"
	"codsim/internal/terrain"
	"codsim/internal/trace"
	"codsim/internal/transport"
)

func benchCB() cb.Config {
	return cb.Config{
		BroadcastInterval: 5 * time.Millisecond,
		RefreshInterval:   50 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	}
}

// --- EXP-1: surround-view frame rate (§4) -------------------------------

type benchRig struct {
	builder *render.SceneBuilder
	rend    *render.Renderer
	cam     render.Camera
	state   fom.CraneState
}

func newBenchRig(b *testing.B, polygons, camIdx, camCount int) *benchRig {
	b.Helper()
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		b.Fatal(err)
	}
	builder, err := render.NewSceneBuilder(ter, nil, polygons)
	if err != nil {
		b.Fatal(err)
	}
	rend, err := render.NewRenderer(640, 480)
	if err != nil {
		b.Fatal(err)
	}
	st := fom.CraneState{
		Position: mathx.V3(100, 0, 100),
		BoomLuff: mathx.Rad(45), BoomLen: 14, CableLen: 6,
		HookPos: mathx.V3(100, 6, 90), CargoPos: mathx.V3(100, 1, 90),
	}
	cams := render.SurroundCameras(st.Position.Add(mathx.V3(0, 3.2, 0)), 0,
		camCount, mathx.Rad(40), 4.0/3.0)
	return &benchRig{builder: builder, rend: rend, cam: cams[camIdx], state: st}
}

func (r *benchRig) frame(n uint32) {
	r.state.BoomSwing = mathx.Rad(float64(n%90) - 45)
	r.rend.Render(r.builder.Frame(r.state), r.cam)
}

// BenchmarkSurroundViewFreeRun is the unsynchronized single-display
// baseline: one op = one rendered frame of the paper-sized scene.
func BenchmarkSurroundViewFreeRun(b *testing.B) {
	for _, polys := range []int{800, 3235, 13000} {
		b.Run(fmt.Sprintf("polys-%d", polys), func(b *testing.B) {
			rig := newBenchRig(b, polys, 0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rig.frame(uint32(i))
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "fps")
		})
	}
}

// BenchmarkSurroundViewSynced is the §4 measurement: one op = one frame
// rendered on all three displays and released through the synchronization
// server's barrier over the CB. The fps metric divided into the free-run
// metric is the synchronization overhead.
func BenchmarkSurroundViewSynced(b *testing.B) {
	for _, polys := range []int{800, 3235} {
		b.Run(fmt.Sprintf("polys-%d", polys), func(b *testing.B) {
			lan := transport.NewMemLAN()
			serverBB, err := cb.New(lan, "sync-server", benchCB())
			if err != nil {
				b.Fatal(err)
			}
			defer serverBB.Close()
			srv, err := displaysync.NewServer(serverBB, "sync", displaysync.ServerConfig{
				Expected: []string{"d-1", "d-2", "d-3"},
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Start()
			defer srv.Stop()

			type unit struct {
				client *displaysync.Display
				rig    *benchRig
			}
			units := make([]*unit, 3)
			for i := range units {
				bb, err := cb.New(lan, fmt.Sprintf("pc-%d", i+1), benchCB())
				if err != nil {
					b.Fatal(err)
				}
				defer bb.Close()
				client, err := displaysync.NewDisplay(bb, fmt.Sprintf("d-%d", i+1))
				if err != nil {
					b.Fatal(err)
				}
				units[i] = &unit{client: client, rig: newBenchRig(b, polys, i, 3)}
			}
			for _, u := range units {
				if !u.client.WaitServer(10 * time.Second) {
					b.Fatal("display never linked")
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, u := range units {
				wg.Add(1)
				go func(u *unit) {
					defer wg.Done()
					if err := u.client.RunFrames(b.N, time.Minute, u.rig.frame); err != nil {
						b.Error(err)
					}
				}(u)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "fps")
		})
	}
}

// --- EXP-2: CB virtual-channel routing (§2.2) ---------------------------

// BenchmarkCBRoutingLocal measures the in-process fast path: one op = one
// UPDATE pushed and reflected on the same computer.
func BenchmarkCBRoutingLocal(b *testing.B) {
	lan := transport.NewMemLAN()
	node, err := cb.New(lan, "solo", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	pub, err := node.PublishObjectClass("p", "State")
	if err != nil {
		b.Fatal(err)
	}
	sub, err := node.SubscribeObjectClass("s", "State", cb.WithQueue(1024))
	if err != nil {
		b.Fatal(err)
	}
	attrs := fom.CraneState{Stability: 1}.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Update(float64(i), attrs); err != nil {
			b.Fatal(err)
		}
		if _, ok := sub.Next(5 * time.Second); !ok {
			b.Fatal("reflection lost")
		}
	}
}

// BenchmarkCBRoutingRemote measures a cross-node virtual channel: one op =
// one UPDATE serialized, routed over the (zero-latency in-memory) LAN, and
// reflected on the other computer.
func BenchmarkCBRoutingRemote(b *testing.B) {
	lan := transport.NewMemLAN()
	pubNode, err := cb.New(lan, "pub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer pubNode.Close()
	subNode, err := cb.New(lan, "sub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer subNode.Close()
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		b.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", cb.WithQueue(1024))
	if err != nil {
		b.Fatal(err)
	}
	if !sub.WaitMatched(5 * time.Second) {
		b.Fatal("channel never established")
	}
	attrs := fom.CraneState{Stability: 1}.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Update(float64(i), attrs); err != nil {
			b.Fatal(err)
		}
		if _, ok := sub.Next(5 * time.Second); !ok {
			b.Fatal("reflection lost")
		}
	}
}

// BenchmarkCBRoutingLatestValue is the conflating delivery path: one op =
// one UPDATE through a remote latest-value channel with a consuming
// subscriber — the 60 Hz state-channel configuration of the simulator.
func BenchmarkCBRoutingLatestValue(b *testing.B) {
	benchRemoteDelivery(b, cb.WithQueue(1024), cb.WithLatestValue())
}

// BenchmarkCBRoutingReliable is the credit-windowed delivery path: one op
// = one UPDATE through a remote reliable channel with a consuming
// subscriber, including the amortized credit-grant traffic flowing back.
func BenchmarkCBRoutingReliable(b *testing.B) {
	benchRemoteDelivery(b, cb.WithReliable(1024))
}

// benchRemoteDelivery measures one UPDATE over a cross-node virtual
// channel under the given subscription options, consuming as it goes.
func benchRemoteDelivery(b *testing.B, opts ...cb.SubscribeOption) {
	lan := transport.NewMemLAN()
	pubNode, err := cb.New(lan, "pub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer pubNode.Close()
	subNode, err := cb.New(lan, "sub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer subNode.Close()
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		b.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", opts...)
	if err != nil {
		b.Fatal(err)
	}
	if !sub.WaitMatched(5 * time.Second) {
		b.Fatal("channel never established")
	}
	if !pub.WaitChannels(1, 5*time.Second) {
		b.Fatal("publisher never linked")
	}
	attrs := fom.CraneState{Stability: 1}.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Update(float64(i), attrs); err != nil {
			b.Fatal(err)
		}
		if _, ok := sub.Next(5 * time.Second); !ok {
			b.Fatal("reflection lost")
		}
	}
}

// BenchmarkCBThroughput is the sustained-throughput headline: a publisher
// streams b.N UPDATEs through a remote Reliable channel while a consumer
// goroutine drains concurrently, so the two ends pipeline instead of
// ping-ponging — the steady-state shape of the 60 Hz state fan-out. One
// op = one frame published, routed, and consumed. Reports frames/s and
// the per-core headline frames/s/core (README "Raw speed"). Run at
// -benchtime 1000x for a steady-state reading (check.sh/CI do).
func BenchmarkCBThroughput(b *testing.B) {
	lan := transport.NewMemLAN()
	pubNode, err := cb.New(lan, "pub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer pubNode.Close()
	subNode, err := cb.New(lan, "sub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer subNode.Close()
	pub, err := pubNode.PublishObjectClass("p", "State")
	if err != nil {
		b.Fatal(err)
	}
	sub, err := subNode.SubscribeObjectClass("s", "State", cb.WithReliable(1024))
	if err != nil {
		b.Fatal(err)
	}
	if !sub.WaitMatched(5 * time.Second) {
		b.Fatal("channel never established")
	}
	if !pub.WaitChannels(1, 5*time.Second) {
		b.Fatal("publisher never linked")
	}
	attrs := fom.CraneState{Stability: 1}.Encode()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, ok := sub.Next(10 * time.Second); !ok {
				b.Error("reflection lost")
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		// UpdateContext blocks on the credit window when the publisher
		// runs ahead of the consumer — backpressure, not loss.
		if err := pub.UpdateContext(ctx, float64(i), attrs); err != nil {
			b.Fatal(err)
		}
	}
	<-done
	fps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(fps, "frames/s")
	b.ReportMetric(fps/float64(runtime.GOMAXPROCS(0)), "frames/s/core")
}

// --- EXP-3: initialization protocol (§2.3) ------------------------------

// BenchmarkChannelSetup measures the full initialization handshake: one op
// = register a subscriber, broadcast SUBSCRIPTION, receive ACKNOWLEDGE,
// build the virtual channel, and tear it down again.
func BenchmarkChannelSetup(b *testing.B) {
	lan := transport.NewMemLAN()
	pubNode, err := cb.New(lan, "pub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer pubNode.Close()
	if _, err := pubNode.PublishObjectClass("p", "State"); err != nil {
		b.Fatal(err)
	}
	subNode, err := cb.New(lan, "sub-pc", benchCB())
	if err != nil {
		b.Fatal(err)
	}
	defer subNode.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := subNode.SubscribeObjectClass("s", "State")
		if err != nil {
			b.Fatal(err)
		}
		if !sub.WaitMatched(10 * time.Second) {
			b.Fatal("never matched")
		}
		b.StopTimer()
		_ = sub.Close()
		b.StartTimer()
	}
}

// --- EXP-4: Stewart platform (§3.4) -------------------------------------

// BenchmarkStewartIK: one op = one inverse-kinematics solution.
func BenchmarkStewartIK(b *testing.B) {
	geo := motion.DefaultGeometry()
	pose := motion.Pose{Surge: 0.04, Heave: 0.02, Roll: 0.03, Pitch: 0.04, Yaw: 0.02}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := geo.IK(pose); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMotionController: one op = one washout cue plus one platform
// tick (the 120 Hz controller loop body).
func BenchmarkMotionController(b *testing.B) {
	ctrl, err := motion.NewController(motion.DefaultGeometry(), motion.DefaultWashout(), 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	cue := fom.MotionCue{SpecificForce: mathx.V3(0.3, -9.7, -1.5), Vibration: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			ctrl.Cue(cue, 1.0/120)
		}
		ctrl.Step(1.0 / 120)
	}
}

// --- EXP-5: dynamics and collision (§3.6) -------------------------------

// BenchmarkHookOscillation: one op = one 60 Hz dynamics step with the hook
// pendulum swinging free after a boom stop.
func BenchmarkHookOscillation(b *testing.B) {
	hs := make([]float64, 101*101)
	ter, err := terrain.New(101, 101, 2, hs)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dynamics.New(dynamics.DefaultConfig(), ter, mathx.V3(100, 0, 100), 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 300; i++ { // raise boom, excite the pendulum
		m.Step(fom.ControlInput{Ignition: true, BoomJoyY: 1}, 1.0/60)
	}
	for i := 0; i < 120; i++ {
		m.Step(fom.ControlInput{Ignition: true, BoomJoyX: 1}, 1.0/60)
	}
	in := fom.ControlInput{Ignition: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(in, 1.0/60)
	}
}

// BenchmarkCollisionMultiLevel and BenchmarkCollisionBruteForce: one op =
// one FindContacts pass over a 60-object field; the ratio is the
// multi-level speedup (Moore & Wilhelms, ref [10]).
func BenchmarkCollisionMultiLevel(b *testing.B) { benchCollision(b, false) }

// BenchmarkCollisionBruteForce is the ablation baseline.
func BenchmarkCollisionBruteForce(b *testing.B) { benchCollision(b, true) }

func benchCollision(b *testing.B, brute bool) {
	w := &collision.World{BruteForce: brute}
	for i := 0; i < 60; i++ {
		o := collision.NewObject(fmt.Sprintf("o%d", i), collision.BoxMesh(0.5, 0.5, 0.5))
		o.SetPose(mathx.V3(float64(i%8)*4, 0, float64(i/8)*4), mathx.QuatIdentity())
		w.Add(o)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.FindContacts()
	}
}

// --- EXP-6: licensing exam (§3.5) ---------------------------------------

// BenchmarkExamScenario: one op = the complete licensing exam — drive,
// lift, traverse, return — run headless with the autopilot at 60 Hz.
func BenchmarkExamScenario(b *testing.B) {
	ter, err := terrain.GenerateSite(terrain.DefaultSite())
	if err != nil {
		b.Fatal(err)
	}
	course := scenario.DefaultCourse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := dynamics.New(dynamics.DefaultConfig(), ter, course.Start, course.StartYaw)
		if err != nil {
			b.Fatal(err)
		}
		cargoPos := course.Circle
		cargoPos.Y = ter.HeightAt(cargoPos.X, cargoPos.Z) + 0.6
		model.PlaceCargo(cargoPos, course.CargoMass)
		eng := scenario.NewEngine(course, crane.DefaultSpec(), scenario.DefaultScore())
		eng.Start()
		ap := trace.NewAutopilot(course)
		const dt = 1.0 / 60
		for simT := 0.0; simT < 600; simT += dt {
			scen := eng.State()
			if scen.Phase == fom.PhaseComplete || scen.Phase == fom.PhaseFailed {
				break
			}
			in := ap.Control(model.State(), scen, dt)
			model.Step(in, dt)
			eng.Step(model.State(), dt)
		}
		if eng.Phase() != fom.PhaseComplete {
			b.Fatalf("exam did not complete: %v", eng.Phase())
		}
	}
}

// BenchmarkScenarioLibrary: one op = one shipped scenario completed
// headless by the generalized autopilot — the per-scenario cost floor the
// batch runner multiplies out.
func BenchmarkScenarioLibrary(b *testing.B) {
	for _, spec := range scenario.Library() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := trace.Run(spec, 900)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Passed {
					b.Fatalf("%s: %v score=%.1f", spec.Name, res.State.Phase, res.State.Score)
				}
			}
		})
	}
}

// --- EXP-7: full federation (§2.1, §5) ----------------------------------

// BenchmarkFullSimulatorBoot: one op = construct, start and stop the whole
// eight-computer federation (all channels established, all LPs launched).
func BenchmarkFullSimulatorBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster, err := sim.New(sim.Config{
			CB:           benchCB(),
			TimeScale:    8,
			Width:        96,
			Height:       72,
			Polygons:     400,
			RenderFrames: 1,
			Autopilot:    true,
			AutoStart:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Start(); err != nil {
			b.Fatal(err)
		}
		cluster.Stop()
	}
}

// --- EXP-8: campaign certification at scale -------------------------------

// BenchmarkHeadlessRun: one op = one 60 Hz step of the headless hot loop
// — autopilot control, dynamics step, engine StepAll — on the shared
// default site with live status text off, exactly the loop
// trace.Runner.RunSkill runs and the certification oracle multiplies by
// ~100k. The steady-state step must stay allocation-free (gated in
// BENCH_baseline.json); the sim-s/s metric is the single-lane oracle
// throughput ceiling.
func BenchmarkHeadlessRun(b *testing.B) {
	spec := scenario.Classic()
	const dt = 1.0 / 60

	var (
		models []*dynamics.Model
		pilots []*trace.Autopilot
		states []fom.CraneState
		eng    *scenario.Engine
	)
	build := func() {
		ter := terrain.DefaultMap()
		decls := spec.CraneDecls()
		world := dynamics.NewWorld()
		models = make([]*dynamics.Model, len(decls))
		pilots = make([]*trace.Autopilot, len(decls))
		states = make([]fom.CraneState, len(decls))
		for c, d := range decls {
			m, err := dynamics.NewCrane(dynamics.DefaultConfig(), ter, world, d.Start, d.StartYaw, c)
			if err != nil {
				b.Fatal(err)
			}
			models[c] = m
			pilots[c] = trace.ForCrane(spec, c)
			states[c] = m.State()
		}
		spec.Install(ter, models...)
		var err error
		eng, err = scenario.NewEngineSpec(spec, crane.DefaultSpec())
		if err != nil {
			b.Fatal(err)
		}
		eng.SetLiveStatus(false)
		eng.Start()
	}
	build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := eng.Phase(); p == fom.PhaseComplete || p == fom.PhaseFailed {
			b.StopTimer()
			build() // fresh rig; amortized over the ~40k steps a run takes
			b.StartTimer()
		}
		for c, m := range models {
			in := pilots[c].Control(states[c], eng.StateFor(c), dt)
			in.CraneID = int64(c)
			m.Step(in, dt)
			states[c] = m.State()
		}
		eng.StepAll(states, dt)
	}
	b.ReportMetric(float64(b.N)*dt/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkOracleCertify: one op = one full certification dry-run — rig
// build, expert flight to a terminal phase, verdict — on a fixed
// certified generated candidate, through the same reusable Runner a
// campaign's oracle loop holds. This is the per-candidate cost a 100k
// campaign pays on every cache miss; the alloc ceiling (gated in
// BENCH_baseline.json) keeps the per-run setup from regressing back to
// per-step churn.
func BenchmarkOracleCertify(b *testing.B) {
	p := gen.DefaultParams()
	var spec scenario.Spec
	found := false
	for k := int64(0); k < 50 && !found; k++ {
		cand, err := gen.Generate(gen.SubSeed(7, k), p)
		if err != nil {
			b.Fatal(err)
		}
		if gen.StaticCheck(cand) != nil {
			continue
		}
		if _, ok, err := trace.Completable(context.Background(), cand, 900); err == nil && ok {
			spec, found = cand, true
		}
	}
	if !found {
		b.Fatal("no certifiable candidate in 50 samples")
	}

	runner := &trace.Runner{StallBudget: trace.DefaultStallBudget}
	ctx := context.Background()
	simS := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.RunSkill(ctx, spec, 900, trace.SkillProfile{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed {
			b.Fatal("certified candidate stopped passing mid-benchmark")
		}
		simS += res.SimTime
	}
	b.ReportMetric(simS/b.Elapsed().Seconds(), "sim-s/s")
}
